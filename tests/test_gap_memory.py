"""Tests for the GAP address-space model and stream assembly."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gap.common import gather_pass_stream, pick_sources, vertex_chunks
from repro.gap.memory import (
    ELEMENT_BYTES,
    GraphMemory,
    PCTable,
    interleave_addr_streams,
    row_edge_indices,
)
from repro.graphs import CSRGraph, path_graph, star_graph
from repro.trace.record import AccessKind


class TestPCTable:
    def test_stable_allocation(self):
        t = PCTable()
        a = t.pc("site.a")
        b = t.pc("site.b")
        assert a != b
        assert t.pc("site.a") == a
        assert len(t) == 2

    def test_sites_mapping(self):
        t = PCTable()
        t.pc("x")
        assert "x" in t.sites

    def test_first_use_order_is_deterministic(self):
        t1, t2 = PCTable(), PCTable()
        for name in ("a", "b", "c"):
            t1.pc(name)
            t2.pc(name)
        assert t1.sites == t2.sites


class TestGraphMemory:
    def test_arrays_do_not_alias(self, path5):
        mem = GraphMemory(path5)
        v = np.arange(5)
        regions = {
            int(mem.oa(v)[0]) >> 36,
            int(mem.na(v)[0]) >> 36,
            int(mem.weight(v)[0]) >> 36,
            int(mem.prop("a", v)[0]) >> 36,
            int(mem.prop("b", v)[0]) >> 36,
        }
        assert len(regions) == 5

    def test_element_addressing(self, path5):
        mem = GraphMemory(path5)
        assert int(mem.oa(1)) - int(mem.oa(0)) == ELEMENT_BYTES

    def test_property_regions_stable(self, path5):
        mem = GraphMemory(path5)
        first = int(mem.prop("rank", 0))
        mem.prop("other", 0)
        assert int(mem.prop("rank", 0)) == first
        assert mem.property_names == ["rank", "other"]


class TestInterleave:
    def test_pairwise(self):
        a = np.array([1, 2], dtype=np.uint64)
        b = np.array([10, 20], dtype=np.uint64)
        addrs, pcs = interleave_addr_streams([(a, 7), (b, 9)])
        assert addrs.tolist() == [1, 10, 2, 20]
        assert pcs.tolist() == [7, 9, 7, 9]

    def test_rejects_unequal_lengths(self):
        with pytest.raises(WorkloadError):
            interleave_addr_streams(
                [(np.zeros(2, dtype=np.uint64), 1), (np.zeros(3, dtype=np.uint64), 2)]
            )

    def test_rejects_empty_list(self):
        with pytest.raises(WorkloadError):
            interleave_addr_streams([])


class TestRowEdgeIndices:
    def test_matches_offsets(self, grid4x4):
        vertices = np.array([0, 5, 15], dtype=np.int64)
        idx = row_edge_indices(grid4x4, vertices)
        expected = np.concatenate(
            [
                np.arange(grid4x4.offsets[v], grid4x4.offsets[v + 1])
                for v in vertices
            ]
        )
        assert np.array_equal(idx, expected)

    def test_empty_vertices(self, grid4x4):
        assert len(row_edge_indices(grid4x4, np.array([], dtype=np.int64))) == 0


class TestGatherPassStream:
    def test_stream_layout_per_vertex(self):
        """OA, then (NA, gather) pairs, then the write — per vertex."""
        g = star_graph(2)  # vertex 0: neighbours [1, 2]; leaves: [0]
        mem = GraphMemory(g)
        addrs, pcs, kinds = gather_pass_stream(
            g, mem, np.array([0]), "val", "out",
            pc_oa=11, pc_na=22, pc_gather=33, pc_write=44,
        )
        # vertex 0: OA + 2*(NA, gather) + write = 6 accesses
        assert len(addrs) == 6
        assert pcs.tolist() == [11, 22, 33, 22, 33, 44]
        assert kinds[-1] == AccessKind.STORE
        assert addrs[0] == mem.oa(0)
        assert addrs[1] == mem.na(0)
        assert addrs[2] == mem.prop("val", 1)
        assert addrs[-1] == mem.prop("out", 0)

    def test_weighted_stream_adds_weight_loads(self):
        g = star_graph(2)
        mem = GraphMemory(g)
        addrs, pcs, kinds = gather_pass_stream(
            g, mem, np.array([0]), "val", None,
            pc_oa=11, pc_na=22, pc_gather=33, pc_write=0,
            with_weights=True, pc_weight=55,
        )
        # OA + 2*(NA, W, gather) = 7 accesses, no write
        assert len(addrs) == 7
        assert pcs.tolist() == [11, 22, 55, 33, 22, 55, 33]
        assert addrs[2] == mem.weight(0)

    def test_zero_degree_vertex(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1]]))  # vertex 2 isolated
        mem = GraphMemory(g)
        # A vertex with no out-edges still reads OA and writes its output.
        addrs, pcs, kinds = gather_pass_stream(
            g, mem, np.array([2]), "val", "out",
            pc_oa=1, pc_na=2, pc_gather=3, pc_write=4,
        )
        assert len(addrs) == 2
        assert pcs.tolist() == [1, 4]

    def test_empty_vertex_list(self, path5):
        mem = GraphMemory(path5)
        addrs, pcs, kinds = gather_pass_stream(
            path5, mem, np.array([], dtype=np.int64), "v", None,
            pc_oa=1, pc_na=2, pc_gather=3, pc_write=0,
        )
        assert len(addrs) == 0

    def test_total_length_formula(self, grid4x4):
        mem = GraphMemory(grid4x4)
        vertices = np.arange(16, dtype=np.int64)
        addrs, _, _ = gather_pass_stream(
            grid4x4, mem, vertices, "v", "w",
            pc_oa=1, pc_na=2, pc_gather=3, pc_write=4,
        )
        expected = 16 * 2 + 2 * grid4x4.num_edges  # OA+write per v, 2 per edge
        assert len(addrs) == expected


class TestHelpers:
    def test_vertex_chunks(self):
        chunks = list(vertex_chunks(np.arange(10), chunk=4))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_pick_sources_have_degree(self, small_graph):
        sources = pick_sources(small_graph, 4)
        assert len(sources) == 4
        assert all(small_graph.out_degree(s) > 0 for s in sources)

    def test_pick_sources_deterministic(self, small_graph):
        assert pick_sources(small_graph, 3) == pick_sources(small_graph, 3)

    def test_pick_sources_empty_graph_raises(self):
        g = CSRGraph(np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64))
        with pytest.raises(WorkloadError):
            pick_sources(g, 1)
