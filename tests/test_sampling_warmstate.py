"""Warm-state protocol, synthesis strategies, and sampling guard rails.

The checkpoint protocol's contract is bit-identity: a policy's
``checkpoint_tables`` snapshot restored into a fresh instance must
reproduce the exact same snapshot, and the executor's boundary
checkpoints must match what an uninterrupted functional pass holds at
the same boundary. These tests pin that contract per policy, the
eviction-training guard's exception safety, the degenerate-input
behaviour of recombination, and the structured errors for traces too
short to sample.
"""

import json
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.config import small_test_machine
from repro.core.cpu import CoreModel
from repro.core.results import snapshot_result
from repro.core.simulator import build_hierarchy, simulate
from repro.errors import ConfigurationError
from repro.policies.basic import LRUPolicy
from repro.policies.registry import (
    WARM_STATE_EXCLUDED,
    available_policies,
    make_policy,
)
from repro.sampling import (
    PREFERRED_SYNTHESIS,
    SYNTHESIS_STRATEGIES,
    VALIDATED_POLICIES,
    SamplingSpec,
    build_plan,
    clear_checkpoint_store,
    compute_boundary_checkpoints,
    recombine,
    simulate_sampled,
    synthesize_from_checkpoint,
)
from repro.sampling import executor as executor_module
from repro.sampling.executor import _fill_blocks, _functional_replay
from repro.trace import synthetic
from repro.trace.trace import Trace

#: Registered policies implementing the warm-state checkpoint protocol.
PROTOCOL_POLICIES = (
    "srrip", "brrip", "drrip", "dip", "ship", "hawkeye", "glider", "mpppb",
)


def canonical(result) -> str:
    return json.dumps(result.to_json_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def machine():
    return small_test_machine()


@pytest.fixture(scope="module")
def phase_trace():
    """Two distinct phases so plans select multiple intervals."""
    loop = synthetic.zipf_reuse(4_000, num_blocks=64, seed=11)
    stream = synthetic.strided(4_000, stride=64, elements=2_000)
    addrs = np.concatenate([loop.addrs, stream.addrs + (1 << 30)])
    pcs = np.concatenate([loop.pcs, stream.pcs + (1 << 20)])
    kinds = np.concatenate([loop.kinds, stream.kinds])
    gaps = np.concatenate([loop.gaps, stream.gaps])
    return Trace.from_arrays(addrs, pcs, kinds, gaps, name="warm-two-phase")


class TestWarmStateProtocol:
    def test_every_registered_policy_implements_or_is_excluded(self, machine):
        for name in available_policies():
            policy = build_hierarchy(machine, name).llc.policy
            cls = type(policy).__name__
            if cls in WARM_STATE_EXCLUDED:
                assert policy.checkpoint_tables() is None, name
                with pytest.raises(NotImplementedError):
                    policy.restore_tables({})
            else:
                assert policy.checkpoint_tables() is not None, name

    def test_no_stale_exclusions(self):
        registered = {type(make_policy(n)).__name__ for n in available_policies()}
        assert set(WARM_STATE_EXCLUDED) <= registered

    @pytest.mark.parametrize("policy_name", PROTOCOL_POLICIES)
    def test_checkpoint_roundtrip_bit_identical(
        self, machine, phase_trace, policy_name
    ):
        trained = build_hierarchy(machine, policy_name)
        _functional_replay(trained, phase_trace, 0, 3_000)
        tables = trained.llc.policy.checkpoint_tables()
        assert tables is not None
        fresh = build_hierarchy(machine, policy_name)
        fresh.llc.policy.restore_tables(tables)
        assert fresh.llc.policy.checkpoint_tables() == tables

    @pytest.mark.parametrize("policy_name", PROTOCOL_POLICIES)
    def test_checkpoint_is_a_snapshot_not_an_alias(
        self, machine, phase_trace, policy_name
    ):
        hierarchy = build_hierarchy(machine, policy_name)
        _functional_replay(hierarchy, phase_trace, 0, 2_000)
        tables = hierarchy.llc.policy.checkpoint_tables()
        frozen = json.dumps(tables, sort_keys=True)
        _functional_replay(hierarchy, phase_trace, 2_000, 5_000)
        assert json.dumps(tables, sort_keys=True) == frozen

    @pytest.mark.parametrize("policy_name", ("ship", "hawkeye", "mpppb"))
    def test_restore_rejects_malformed_checkpoint(self, machine, policy_name):
        hierarchy = build_hierarchy(machine, policy_name)
        tables = hierarchy.llc.policy.checkpoint_tables()
        bad = dict(tables)
        for key, value in bad.items():
            if isinstance(value, list):
                bad[key] = value[:1]
                break
        with pytest.raises((ValueError, KeyError)):
            hierarchy.llc.policy.restore_tables(bad)


class TestEvictionTrainingGuard:
    class _ExplodingCache:
        """Cache stand-in whose second fill raises mid-rebuild."""

        def __init__(self, policy):
            self.policy = policy
            self.calls = 0

        def fill(self, block, pc, kind):
            self.calls += 1
            if self.calls == 2:
                raise RuntimeError("injected fill failure")

    def test_on_eviction_restored_after_failing_fill(self, machine):
        hierarchy = build_hierarchy(machine, "ship")
        policy = hierarchy.llc.policy
        original = policy.on_eviction
        cache = self._ExplodingCache(policy)
        blocks = np.arange(4, dtype=np.uint64)
        pcs = np.arange(4, dtype=np.uint64)
        kinds = np.zeros(4, dtype=np.uint8)
        with pytest.raises(RuntimeError, match="injected fill failure"):
            _fill_blocks(cache, blocks, pcs, kinds)
        # The guard must restore the real training hook even when the
        # rebuild dies half-way — otherwise every later eviction in the
        # measured run trains nothing, silently.
        assert policy.on_eviction == original
        assert getattr(policy.on_eviction, "__name__", "") != "<lambda>"

    def test_on_eviction_restored_after_clean_rebuild(self, machine, phase_trace):
        hierarchy = build_hierarchy(machine, "ship")
        policy = hierarchy.llc.policy
        original = policy.on_eviction
        from repro.sampling import synthesize_warm_state

        synthesize_warm_state(hierarchy, phase_trace, 2_000)
        assert policy.on_eviction == original


class TestRecombineDegenerate:
    def _zero_measurement(self, machine):
        """A measurement with zero instructions, cycles and DRAM traffic."""
        hierarchy = build_hierarchy(machine, "lru")
        core = CoreModel(machine.core)
        return snapshot_result("degenerate", "lru", hierarchy, core.drain())

    def test_zero_denominators_yield_zero_not_nan(self, machine):
        result = recombine([(self._zero_measurement(machine), 3)], "d", "lru")
        assert result.ipc == 0.0
        assert result.llc_mpki == 0.0
        assert result.dram_row_hit_rate == 0.0
        assert result.mean_load_latency == 0.0

    def test_zero_weight_measurements_do_not_divide_by_zero(self, machine):
        trace = synthetic.zipf_reuse(1_200, num_blocks=40, seed=5)
        full = simulate(trace, config=machine, llc_policy="lru")
        result = recombine([(full, 0)], trace.name, "lru")
        assert result.dram_row_hit_rate == 0.0
        assert result.mean_load_latency == 0.0
        assert result.instructions == 0

    def test_mixed_zero_and_live_intervals(self, machine):
        trace = synthetic.zipf_reuse(1_200, num_blocks=40, seed=5)
        full = simulate(trace, config=machine, llc_policy="lru")
        mixed = recombine(
            [(self._zero_measurement(machine), 2), (full, 3)], trace.name, "lru"
        )
        assert mixed.instructions == 3 * full.instructions
        assert mixed.ipc > 0.0


class TestShortTraceGuards:
    def test_trace_shorter_than_one_window_is_structured_error(self):
        short = synthetic.zipf_reuse(300, num_blocks=16, seed=2)
        with pytest.raises(ConfigurationError) as excinfo:
            build_plan(short, SamplingSpec(window_size=500))
        message = str(excinfo.value)
        assert short.name in message
        assert "500" in message
        assert "too short" in message

    def test_warm_windows_consuming_the_whole_trace_is_an_error(self):
        trace = synthetic.zipf_reuse(1_000, num_blocks=32, seed=3)
        with pytest.raises(ConfigurationError, match="run it unsampled"):
            build_plan(
                trace,
                SamplingSpec(intervals=2, window_size=500, warm_windows=1),
            )

    def test_simulate_sampled_propagates_the_guard(self, machine):
        short = synthetic.zipf_reuse(300, num_blocks=16, seed=2)
        with pytest.raises(ConfigurationError, match="too short"):
            simulate_sampled(
                short, config=machine, sampling=SamplingSpec(window_size=500)
            )


class TestSynthesisStrategies:
    def test_replay_is_deterministic_and_reported(self, machine, phase_trace):
        spec = SamplingSpec(intervals=3, window_size=500, warm_synthesis="replay")
        a = simulate_sampled(
            phase_trace, config=machine, llc_policy="ship", sampling=spec
        )
        b = simulate_sampled(
            phase_trace, config=machine, llc_policy="ship", sampling=spec
        )
        assert canonical(a) == canonical(b)
        assert a.info["sampling_replay_accesses"] > 0
        assert a.info["sampling_checkpoint_restores"] == 0

    def test_replay_start_precedes_warm_start(self, phase_trace):
        spec = SamplingSpec(
            intervals=3, window_size=500, warm_synthesis="replay", replay_windows=2
        )
        plan = build_plan(phase_trace, spec)
        for interval in plan.intervals:
            assert 0 <= interval.replay_start <= interval.warm_start
            assert interval.warm_start - interval.replay_start <= 2 * plan.window_size
        assert plan.functional_accesses > 0

    def test_checkpoint_requires_the_protocol(self, machine, phase_trace):
        """An unregistered table-less policy cannot run under checkpoint."""

        class BarePolicy(LRUPolicy):
            name = "bare-custom"

        spec = SamplingSpec(
            intervals=2, window_size=500, warm_synthesis="checkpoint"
        )
        with pytest.raises(ConfigurationError, match="warm-state"):
            simulate_sampled(
                phase_trace, config=machine, llc_policy=BarePolicy(),
                sampling=spec,
            )

    def test_checkpoint_degrades_to_recency_for_excluded_policies(
        self, machine, phase_trace
    ):
        """WARM_STATE_EXCLUDED policies (the CLI's forced LRU baseline)
        run under "checkpoint" as recency cells instead of refusing the
        whole sweep — bit-identical to an explicit recency run."""
        checkpoint = simulate_sampled(
            phase_trace, config=machine, llc_policy="lru",
            sampling=SamplingSpec(
                intervals=2, window_size=500, warm_synthesis="checkpoint"
            ),
        )
        recency = simulate_sampled(
            phase_trace, config=machine, llc_policy="lru",
            sampling=SamplingSpec(
                intervals=2, window_size=500, warm_synthesis="recency"
            ),
        )
        assert checkpoint.info["sampling_synthesis_effective"] == "recency"
        assert checkpoint.info["sampling_checkpoint_restores"] == 0
        assert checkpoint.llc_mpki == recency.llc_mpki
        assert checkpoint.ipc == recency.ipc
        # The requested spec still rides the result (distinct cache key).
        assert checkpoint.info["sampling"]["warm_synthesis"] == "checkpoint"

    def test_checkpoint_deterministic_and_store_reused(
        self, machine, phase_trace, monkeypatch
    ):
        spec = SamplingSpec(
            intervals=3, window_size=500, warm_synthesis="checkpoint"
        )
        clear_checkpoint_store()
        calls = {"n": 0}
        real = compute_boundary_checkpoints

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            executor_module, "compute_boundary_checkpoints", counting
        )
        a = simulate_sampled(
            phase_trace, config=machine, llc_policy="ship", sampling=spec
        )
        b = simulate_sampled(
            phase_trace, config=machine, llc_policy="ship", sampling=spec
        )
        assert calls["n"] == 1  # second run hits the in-process store
        clear_checkpoint_store()
        c = simulate_sampled(
            phase_trace, config=machine, llc_policy="ship", sampling=spec
        )
        assert calls["n"] == 2
        assert canonical(a) == canonical(b) == canonical(c)
        assert a.info["sampling_checkpoint_restores"] == len(
            a.info["sampling_plan"]["intervals"]
        )

    @pytest.mark.parametrize("policy_name", ("ship", "hawkeye"))
    def test_boundary_checkpoint_matches_uninterrupted_pass(
        self, machine, phase_trace, policy_name
    ):
        boundary = 3_000
        checkpoints = compute_boundary_checkpoints(
            phase_trace, machine, policy_name, (boundary,)
        )
        # An uninterrupted functional pass over the same prefix must
        # land on bit-identical tables and resident sets.
        reference = build_hierarchy(machine, policy_name)
        _functional_replay(reference, phase_trace, 0, boundary)
        checkpoint = checkpoints[boundary]
        assert reference.llc.policy.checkpoint_tables() == checkpoint["tables"]
        for name, cache in reference.caches.items():
            expected = np.sort(np.asarray(cache.resident_blocks(), dtype=np.uint64))
            assert np.array_equal(checkpoint["resident"][name], expected), name

    @pytest.mark.parametrize("policy_name", ("ship", "hawkeye"))
    def test_synthesize_from_checkpoint_reproduces_state(
        self, machine, phase_trace, policy_name
    ):
        boundary = 3_000
        checkpoints = compute_boundary_checkpoints(
            phase_trace, machine, policy_name, (boundary,)
        )
        target = build_hierarchy(machine, policy_name)
        fills = synthesize_from_checkpoint(
            target, phase_trace, boundary, checkpoints[boundary]
        )
        assert fills > 0
        assert (
            target.llc.policy.checkpoint_tables()
            == checkpoints[boundary]["tables"]
        )
        for name, cache in target.caches.items():
            resident = np.sort(np.asarray(cache.resident_blocks(), dtype=np.uint64))
            assert np.array_equal(
                resident, checkpoints[boundary]["resident"][name]
            ), name


class TestValidatedPolicies:
    def test_validated_policies_have_a_committed_strategy(self):
        for policy in VALIDATED_POLICIES:
            assert policy in PREFERRED_SYNTHESIS, policy
            assert PREFERRED_SYNTHESIS[policy] in SYNTHESIS_STRATEGIES

    def test_ship_is_validated(self):
        assert "ship" in VALIDATED_POLICIES

    @pytest.mark.parametrize("policy_name", VALIDATED_POLICIES)
    def test_sampled_tracks_full_under_committed_strategy(
        self, machine, phase_trace, policy_name
    ):
        spec = SamplingSpec(
            intervals=4,
            window_size=500,
            warm_synthesis=PREFERRED_SYNTHESIS[policy_name],
        )
        full = simulate(phase_trace, config=machine, llc_policy=policy_name)
        sampled = simulate_sampled(
            phase_trace, config=machine, llc_policy=policy_name, sampling=spec
        )
        # Tiny synthetic trace: a sanity band only — the committed error
        # budget is enforced against BENCH_sampling.json by the CI gate.
        assert sampled.llc_mpki == pytest.approx(full.llc_mpki, rel=0.5)


class TestCrossProcessDeterminism:
    SCRIPT = textwrap.dedent(
        """
        import json
        import numpy as np
        from repro.core.config import small_test_machine
        from repro.sampling import SamplingSpec, simulate_sampled
        from repro.trace import synthetic
        from repro.trace.trace import Trace

        loop = synthetic.zipf_reuse(3_000, num_blocks=64, seed=11)
        stream = synthetic.strided(3_000, stride=64, elements=1_500)
        trace = Trace.from_arrays(
            np.concatenate([loop.addrs, stream.addrs + (1 << 30)]),
            np.concatenate([loop.pcs, stream.pcs + (1 << 20)]),
            np.concatenate([loop.kinds, stream.kinds]),
            np.concatenate([loop.gaps, stream.gaps]),
            name="xproc",
        )
        spec = SamplingSpec(
            intervals=2, window_size=500, warm_synthesis="{synthesis}"
        )
        result = simulate_sampled(
            trace,
            config=small_test_machine(),
            llc_policy="ship",
            sampling=spec,
        )
        print(json.dumps(result.to_json_dict(), sort_keys=True))
        """
    )

    @pytest.mark.parametrize("synthesis", ("replay", "checkpoint"))
    def test_bit_identical_across_processes(self, synthesis):
        script = self.SCRIPT.format(synthesis=synthesis)
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()
