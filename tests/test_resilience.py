"""Tests for the fault-tolerance layer: retry policy, classification,
resilient execution (timeouts, BrokenProcessPool recovery, poison),
cache integrity/quarantine, and the chaos harness end-to-end."""

import json
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.errors import (
    CacheIntegrityError,
    CellTimeoutError,
    ConfigurationError,
    UnknownPolicyError,
)
from repro.harness.engine import ResultCache, SweepEngine, result_checksum
from repro.resilience import (
    ChaosPlan,
    FailureKind,
    FailureReport,
    ResilientExecutor,
    RetryPolicy,
    classify_failure,
)
from repro.resilience.chaos import plan_chaos, run_chaos
from repro.resilience.report import (
    OUTCOME_POISONED,
    OUTCOME_RECOVERED,
    CellAttempt,
)
from repro.trace import synthetic


def tiny_config() -> MachineConfig:
    return MachineConfig(
        l1i=CacheConfig("L1I", 1024, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, hit_latency=1),
        l2=CacheConfig("L2C", 4096, 4, hit_latency=4),
        llc=CacheConfig("LLC", 8192, 4, hit_latency=8),
    )


@pytest.fixture(scope="module")
def traces():
    return {
        "zipf": synthetic.zipf_reuse(2000, num_blocks=200, seed=1),
        "stream": synthetic.strided(2000, stride=64, elements=100),
    }


FAST_RETRY = dict(backoff_base=0.01, backoff_max=0.05)


class TestRetryPolicy:
    def test_backoff_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        for attempt in (1, 2, 3):
            assert a.backoff_for("w x p", attempt) == b.backoff_for("w x p", attempt)

    def test_backoff_jitter_varies_by_cell_attempt_and_seed(self):
        p = RetryPolicy(seed=7)
        assert p.jitter_fraction("a", 1) != p.jitter_fraction("b", 1)
        assert p.jitter_fraction("a", 1) != p.jitter_fraction("a", 2)
        assert p.jitter_fraction("a", 1) != RetryPolicy(seed=8).jitter_fraction("a", 1)

    def test_backoff_grows_exponentially_and_clamps(self):
        p = RetryPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_max=3.0,
                        jitter=0.0)
        assert p.backoff_for("c", 1) == 1.0
        assert p.backoff_for("c", 2) == 2.0
        assert p.backoff_for("c", 3) == 3.0  # clamped, would be 4.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(cell_timeout=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(poison_strikes=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_should_retry_only_transient_within_budget(self):
        p = RetryPolicy(max_attempts=2)
        assert p.should_retry(FailureKind.TRANSIENT, 1)
        assert not p.should_retry(FailureKind.TRANSIENT, 2)
        assert not p.should_retry(FailureKind.DETERMINISTIC, 1)
        assert not p.should_retry(FailureKind.POISON, 1)


class TestClassification:
    def test_taxonomy(self):
        assert classify_failure(MemoryError()) is FailureKind.POISON
        assert classify_failure(BrokenProcessPool("dead")) is FailureKind.TRANSIENT
        assert classify_failure(CellTimeoutError("slow")) is FailureKind.TRANSIENT
        assert classify_failure(OSError("io")) is FailureKind.TRANSIENT
        assert classify_failure(UnknownPolicyError("nope")) is FailureKind.DETERMINISTIC
        assert classify_failure(ValueError("bug")) is FailureKind.DETERMINISTIC


class TestFailureReport:
    def _attempt(self, n=1, kind=FailureKind.TRANSIENT):
        return CellAttempt(attempt=n, classification=kind.value,
                           error_type="OSError", message="io", backoff=0.1)

    def test_clean_and_aggregates(self):
        report = FailureReport()
        assert report.clean
        report.record_attempt("w", "p", self._attempt())
        report.record_outcome("w", "p", OUTCOME_RECOVERED)
        report.record_attempt("w", "q", self._attempt())
        assert not report.clean  # w x q defaulted to failed
        assert len(report.recovered) == 1
        assert len(report.failed) == 1
        assert report.total_failed_attempts == 2
        assert len(report.attempts_of_kind(FailureKind.TRANSIENT)) == 2
        assert len(report.attempts_with_error("OSError")) == 2

    def test_render_and_json(self):
        report = FailureReport()
        assert "clean" in report.render()
        report.record_attempt("w", "p", self._attempt())
        report.record_outcome("w", "p", OUTCOME_POISONED)
        text = report.render()
        assert "w x p" in text and "poisoned" in text
        md = report.render(markdown=True)
        assert md.startswith("### Failure report")
        doc = json.loads(json.dumps(report.to_json_dict()))
        assert doc["cells"][0]["outcome"] == "poisoned"


class TestResilientExecutorSerial:
    """Unit-level retry loop driven by an injectable inline runner."""

    def _executor(self, run_inline, retry=None, report=None):
        failures = []
        successes = []
        executor = ResilientExecutor(
            retry=retry or RetryPolicy(max_attempts=3, **FAST_RETRY),
            workers=1,
            submit=lambda *a: pytest.fail("serial path must not use a pool"),
            run_inline=run_inline,
            on_success=lambda w, p, r: successes.append((w, p, r)),
            on_failure=lambda w, p, e, k: failures.append((w, p, e, k)),
            report=report if report is not None else FailureReport(),
        )
        return executor, successes, failures

    def test_transient_failure_recovers(self):
        calls = []

        def flaky(workload, policy, attempt):
            calls.append(attempt)
            if attempt < 3:
                raise OSError("transient")
            return "ok"

        report = FailureReport()
        executor, successes, failures = self._executor(flaky, report=report)
        executor.run_serial([("w", "p")])
        assert calls == [1, 2, 3]
        assert successes == [("w", "p", "ok")]
        assert not failures
        history = report.cells[("w", "p")]
        assert history.outcome == OUTCOME_RECOVERED
        assert [a.attempt for a in history.attempts] == [1, 2]
        assert all(a.backoff > 0 for a in history.attempts)

    def test_deterministic_failure_fails_fast(self):
        calls = []

        def broken(workload, policy, attempt):
            calls.append(attempt)
            raise ValueError("bug")

        executor, successes, failures = self._executor(broken)
        executor.run_serial([("w", "p")])
        assert calls == [1], "deterministic failures must not be retried"
        assert failures[0][3] is FailureKind.DETERMINISTIC

    def test_memory_error_is_poison(self):
        def oom(workload, policy, attempt):
            raise MemoryError("oom")

        report = FailureReport()
        executor, _, failures = self._executor(oom, report=report)
        executor.run_serial([("w", "p")])
        assert failures[0][3] is FailureKind.POISON
        assert report.cells[("w", "p")].outcome == OUTCOME_POISONED

    def test_retries_exhausted_fails(self):
        def always(workload, policy, attempt):
            raise OSError("transient forever")

        retry = RetryPolicy(max_attempts=2, **FAST_RETRY)
        executor, _, failures = self._executor(always, retry=retry)
        executor.run_serial([("w", "p")])
        assert len(failures) == 1
        assert failures[0][3] is FailureKind.TRANSIENT

    def test_strike_budget_turns_transient_into_poison(self):
        report = FailureReport()
        executor, _, failures = self._executor(
            lambda *a: None,
            retry=RetryPolicy(max_attempts=10, poison_strikes=2, **FAST_RETRY),
            report=report,
        )
        from repro.resilience.executor import _CellState

        cell = _CellState("w", "p")
        rescheduled = []
        executor._absorb(cell, BrokenProcessPool("x"), 0.0, strike=True,
                         reschedule=lambda c, b: rescheduled.append(b))
        assert rescheduled, "first strike retries"
        executor._absorb(cell, BrokenProcessPool("x"), 0.0, strike=True,
                         reschedule=lambda c, b: rescheduled.append(b))
        assert len(rescheduled) == 1, "second strike hits the poison budget"
        assert failures[0][3] is FailureKind.POISON
        assert report.cells[("w", "p")].outcome == OUTCOME_POISONED


class TestEngineResilience:
    def test_retry_policy_without_faults_is_transparent(self, traces):
        config = tiny_config()
        plain = SweepEngine(jobs=1).run(traces, ["lru"], config=config)
        resilient = SweepEngine(jobs=1).run(
            traces, ["lru"], config=config,
            retry=RetryPolicy(max_attempts=3, **FAST_RETRY),
        )
        assert resilient.matrix.results == plain.matrix.results
        assert resilient.failure_report is not None
        assert resilient.failure_report.clean
        assert not resilient.failure_report.cells

    def test_deterministic_failure_isolated_with_classification(self, traces):
        outcome = SweepEngine(jobs=1).run(
            traces, ["lru", "no-such-policy"], config=tiny_config(),
            isolate_failures=True,
            retry=RetryPolicy(max_attempts=3, **FAST_RETRY),
        )
        assert outcome.stats.errors == 2
        assert outcome.stats.simulated == 2
        for workload in traces:
            error = outcome.errors[(workload, "no-such-policy")]
            assert error.classification == "deterministic"
            history = outcome.failure_report.cells[(workload, "no-such-policy")]
            assert len(history.attempts) == 1, "no retries for deterministic"

    def test_serial_memory_error_marked_poison(self, traces, monkeypatch):
        def oom(*args, **kwargs):
            raise MemoryError("worker would be OOM-killed")

        monkeypatch.setattr("repro.harness.engine._simulate_cell", oom)
        outcome = SweepEngine(jobs=1).run(
            traces, ["lru"], config=tiny_config(), isolate_failures=True,
        )
        assert outcome.stats.errors == 2
        for error in outcome.errors.values():
            assert error.classification == "poison"
            assert error.error_type == "MemoryError"

    def test_broken_pool_recovery_bit_identical(self, traces, tmp_path):
        """A chaos-crashed worker breaks the pool; the sweep still matches
        a fault-free run bit for bit."""
        config = tiny_config()
        baseline = SweepEngine(jobs=1).run(traces, ["lru", "srrip"], config=config)

        plan = ChaosPlan(marker_dir=str(tmp_path), crash_cells=(("zipf", "srrip"),))
        outcome = SweepEngine(jobs=2).run(
            traces, ["lru", "srrip"], config=config, isolate_failures=True,
            retry=RetryPolicy(max_attempts=3, **FAST_RETRY), chaos=plan,
        )
        assert not outcome.errors
        assert outcome.matrix.results == baseline.matrix.results
        report = outcome.failure_report
        assert report.pool_rebuilds >= 1
        assert report.attempts_with_error("BrokenProcessPool")
        assert report.cells[("zipf", "srrip")].outcome == OUTCOME_RECOVERED
        assert report.clean

    def test_timeout_aborts_and_retries_hung_cell(self, traces, tmp_path):
        """A hung cell is killed at the deadline and recovered on retry,
        even at jobs=1 (the watchdog forces pool execution)."""
        config = tiny_config()
        baseline = SweepEngine(jobs=1).run(traces, ["lru"], config=config)

        plan = ChaosPlan(marker_dir=str(tmp_path), hang_cells=(("stream", "lru"),),
                         hang_seconds=30.0)
        outcome = SweepEngine(jobs=1).run(
            traces, ["lru"], config=config, isolate_failures=True,
            retry=RetryPolicy(max_attempts=3, cell_timeout=1.0, **FAST_RETRY),
            chaos=plan,
        )
        assert not outcome.errors
        assert outcome.matrix.results == baseline.matrix.results
        report = outcome.failure_report
        timeouts = report.attempts_with_error("CellTimeoutError")
        assert timeouts and all(a.classification == "transient" for a in timeouts)
        assert report.cells[("stream", "lru")].outcome == OUTCOME_RECOVERED

    def test_retry_determinism_same_seed_same_schedule(self, traces, tmp_path):
        """Same seed -> same backoff schedule -> bit-identical results."""
        config = tiny_config()
        outcomes = []
        for run in ("a", "b"):
            marker_dir = tmp_path / run
            marker_dir.mkdir()
            plan = ChaosPlan(marker_dir=str(marker_dir),
                             crash_cells=(("zipf", "lru"),))
            outcome = SweepEngine(jobs=2).run(
                traces, ["lru", "srrip"], config=config, isolate_failures=True,
                retry=RetryPolicy(max_attempts=3, seed=11, **FAST_RETRY),
                chaos=plan,
            )
            outcomes.append(outcome)
        a, b = outcomes
        assert a.matrix.results == b.matrix.results
        # The victim's recorded backoff schedule is identical across runs.
        backoffs = [
            [attempt.backoff for attempt in outcome.failure_report.cells[("zipf", "lru")].attempts]
            for outcome in outcomes
        ]
        assert backoffs[0] == backoffs[1]
        assert backoffs[0], "the crash must have been absorbed"


class TestCacheIntegrity:
    def _first_entry(self, cache_dir):
        return ResultCache(cache_dir)._entry_files()[0]

    def test_entries_carry_checksum(self, traces, tmp_path):
        SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, ["lru"], config=tiny_config()
        )
        doc = json.loads(self._first_entry(tmp_path).read_text(encoding="utf-8"))
        assert doc["checksum"] == result_checksum(doc["result"])

    def test_tampered_entry_quarantined_and_resimulated(self, traces, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=tiny_config())
        entry = self._first_entry(tmp_path)
        doc = json.loads(entry.read_text(encoding="utf-8"))
        doc["result"]["__tampered__"] = True
        entry.write_text(json.dumps(doc), encoding="utf-8")

        outcome = engine.run(traces, ["lru"], config=tiny_config())
        assert outcome.stats.hits == 1
        assert outcome.stats.simulated == 1, "the corrupt cell re-simulates"
        quarantine = tmp_path / "quarantine"
        assert quarantine.is_dir() and len(list(quarantine.iterdir())) == 1
        assert engine.cache.quarantined_count == 1

    def test_old_entry_version_is_plain_miss_not_quarantine(self, traces, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=tiny_config())
        for entry in ResultCache(tmp_path)._entry_files():
            doc = json.loads(entry.read_text(encoding="utf-8"))
            doc["entry_version"] = 1
            entry.write_text(json.dumps(doc), encoding="utf-8")
        outcome = engine.run(traces, ["lru"], config=tiny_config())
        assert outcome.stats.simulated == 2, "old entries are misses"
        assert not (tmp_path / "quarantine").exists(), "not corruption"

    def test_stats_reports_corrupt_and_quarantined(self, traces, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru", "srrip"], config=tiny_config())
        cache = ResultCache(tmp_path)
        entries = cache._entry_files()
        entries[0].write_text("{not json", encoding="utf-8")
        report = cache.stats()
        assert report.entries == 4
        assert report.corrupt == 1
        assert report.quarantined == 0
        # Loading the corrupt entry moves it aside; stats now sees it there.
        assert cache.load(entries[0].stem) is None
        report = cache.stats()
        assert report.entries == 3
        assert report.corrupt == 0
        assert report.quarantined == 1
        assert "1 quarantined" in report.render()

    def test_verify_quarantines_and_counts(self, traces, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru", "srrip"], config=tiny_config())
        cache = ResultCache(tmp_path)
        entries = cache._entry_files()
        entries[0].write_text("garbage", encoding="utf-8")
        doc = json.loads(entries[1].read_text(encoding="utf-8"))
        doc["checksum"] = "0" * 64
        entries[1].write_text(json.dumps(doc), encoding="utf-8")

        report = cache.verify()
        assert report.checked == 4
        assert report.ok == 2
        assert report.quarantined == 2
        assert "2 corrupt" in report.render()
        # Quarantined entries no longer count as live entries.
        assert cache.stats().entries == 2
        # The sweep re-simulates the quarantined cells and completes.
        outcome = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert outcome.stats.hits == 2 and outcome.stats.simulated == 2

    def test_validate_entry_raises_integrity_error(self, traces, tmp_path):
        SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, ["lru"], config=tiny_config()
        )
        doc = json.loads(self._first_entry(tmp_path).read_text(encoding="utf-8"))
        doc["result"]["__x__"] = 1
        with pytest.raises(CacheIntegrityError, match="checksum mismatch"):
            ResultCache._validate_entry(doc)

    def test_prune_preserves_quarantine(self, traces, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1, salt="old")
        engine.run(traces, ["lru"], config=tiny_config())
        entry = ResultCache(tmp_path, salt="old")._entry_files()[0]
        entry.write_text("junk", encoding="utf-8")
        cache = ResultCache(tmp_path, salt="old")
        cache.verify()
        assert cache.stats().quarantined == 1
        newer = ResultCache(tmp_path, salt="new")
        newer.prune()  # removes the stale "old" generation...
        assert newer.stats().quarantined == 1  # ...but never the evidence

    def test_cli_cache_verify(self, traces, tmp_path, capsys):
        from repro.__main__ import main

        SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, ["lru"], config=tiny_config()
        )
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 ok, 0 corrupt" in out


class TestChaosHarness:
    def test_plan_is_deterministic_and_spreads_faults(self, tmp_path):
        cells = [(w, p) for w in ("a", "b") for p in ("x", "y")]
        one = plan_chaos(cells, seed=5, marker_dir=tmp_path)
        two = plan_chaos(cells, seed=5, marker_dir=tmp_path)
        assert one.plan.crash_cells == two.plan.crash_cells
        assert one.corrupt_cache_cells == two.corrupt_cache_cells
        # crash/hang chain on one victim; corruption hits a different cell
        assert one.plan.crash_cells == one.plan.hang_cells
        assert one.corrupt_cache_cells[0] != one.plan.crash_cells[0]
        other = plan_chaos(cells, seed=6, marker_dir=tmp_path)
        assert (one.plan.crash_cells, one.corrupt_cache_cells) != (
            other.plan.crash_cells, other.corrupt_cache_cells
        )

    def test_plan_requires_two_cells(self, tmp_path):
        from repro.errors import ResilienceError

        with pytest.raises(ResilienceError, match="at least 2 cells"):
            plan_chaos([("a", "x")], seed=0, marker_dir=tmp_path)

    def test_chaos_end_to_end(self, tmp_path):
        """The acceptance contract: seeded crash + hang + corrupt cache +
        truncated trace; the sweep completes, results are bit-identical
        to fault-free, and the FailureReport accounts for every fault."""
        report = run_chaos(
            seed=3,
            kernels=("bfs", "pr"),
            policies=("lru", "srrip"),
            scale=10,
            degree=8,
            max_accesses=6000,
            jobs=2,
            retry=RetryPolicy(
                max_attempts=3, cell_timeout=5.0,
                backoff_base=0.02, backoff_max=0.2, seed=3,
            ),
            work_dir=tmp_path,
        )
        assert report.passed, report.render()
        assert report.injected_crashes == 1
        assert report.injected_hangs == 1
        assert report.observed_crash_recoveries >= 1
        assert report.observed_timeout_recoveries >= 1
        assert report.observed_quarantined >= 1
        assert "TraceFormatError" in report.trace_fault_error
        assert report.bit_identical and report.sweep_completed
        doc = json.loads(json.dumps(report.to_json_dict()))
        assert doc["passed"] is True
        rendered = report.render()
        assert "bit-identical to fault-free baseline: True" in rendered
