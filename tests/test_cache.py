"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import Cache
from repro.policies.basic import LRUPolicy
from repro.policies.base import BYPASS, PolicyAccess, ReplacementPolicy
from repro.trace.record import AccessKind


def make_cache(size=4096, ways=4, policy=None, **kwargs) -> Cache:
    return Cache("T", size, ways, policy or LRUPolicy(), **kwargs)


class TestGeometry:
    def test_sets_computed(self):
        c = make_cache(size=4096, ways=4)  # 4096 / (64*4) = 16 sets
        assert c.num_sets == 16
        assert c.num_ways == 4

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            make_cache(size=3 * 64 * 4, ways=4)

    def test_rejects_size_not_multiple(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            make_cache(size=4000, ways=4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make_cache(size=0, ways=4)

    def test_llc_geometry_from_paper(self):
        """The paper's 1.375 MB 11-way LLC must give 2048 sets."""
        c = make_cache(size=1408 * 1024, ways=11)
        assert c.num_sets == 2048

    def test_set_index_uses_low_bits(self):
        c = make_cache(size=4096, ways=4)
        assert c.set_index(0) == 0
        assert c.set_index(17) == 1
        assert c.set_index(16) == 0


class TestHitMiss:
    def test_first_access_misses(self):
        c = make_cache()
        assert not c.access(5, 0, AccessKind.LOAD).hit

    def test_access_after_fill_hits(self):
        c = make_cache()
        c.access(5, 0, AccessKind.LOAD)
        c.fill(5, 0, AccessKind.LOAD)
        assert c.access(5, 0, AccessKind.LOAD).hit

    def test_contains_and_occupancy(self):
        c = make_cache()
        c.fill(5, 0, AccessKind.LOAD)
        assert c.contains(5)
        assert not c.contains(6)
        assert c.occupancy == 1

    def test_invalid_ways_fill_first(self):
        c = make_cache(size=4 * 64, ways=4)  # 1 set, 4 ways
        for block in range(4):
            c.fill(block * c.num_sets, 0, AccessKind.LOAD)
        assert c.occupancy == 4
        assert c.stats.evictions == 0

    def test_eviction_when_set_full(self):
        c = make_cache(size=4 * 64, ways=4)
        for block in range(5):
            c.fill(block, 0, AccessKind.LOAD)
        assert c.occupancy == 4
        assert c.stats.evictions == 1
        assert not c.contains(0)  # LRU victim

    def test_lookup_does_not_touch_stats(self):
        c = make_cache()
        c.lookup(3)
        assert c.stats.demand_accesses == 0


class TestDirtyState:
    def test_store_marks_dirty_then_eviction_reports_it(self):
        c = make_cache(size=2 * 64, ways=2)  # 1 set, 2 ways
        c.fill(0, 0, AccessKind.STORE)
        c.fill(1, 0, AccessKind.LOAD)
        result = c.fill(2, 0, AccessKind.LOAD)  # evicts block 0 (LRU)
        assert result.victim_block == 0
        assert result.victim_dirty

    def test_load_fill_is_clean(self):
        c = make_cache(size=2 * 64, ways=2)
        c.fill(0, 0, AccessKind.LOAD)
        c.fill(1, 0, AccessKind.LOAD)
        result = c.fill(2, 0, AccessKind.LOAD)
        assert not result.victim_dirty

    def test_store_hit_marks_dirty(self):
        c = make_cache(size=2 * 64, ways=2)
        c.fill(0, 0, AccessKind.LOAD)
        c.access(0, 0, AccessKind.STORE)
        c.fill(1, 0, AccessKind.LOAD)
        result = c.fill(2, 0, AccessKind.LOAD)
        assert result.victim_dirty

    def test_writeback_fill_is_dirty(self):
        c = make_cache(size=2 * 64, ways=2)
        c.fill(0, 0, AccessKind.WRITEBACK)
        c.fill(1, 0, AccessKind.LOAD)
        result = c.fill(2, 0, AccessKind.LOAD)
        assert result.victim_dirty
        assert c.stats.dirty_evictions == 1


class TestStats:
    def test_demand_counters(self):
        c = make_cache()
        c.access(0, 0, AccessKind.LOAD)  # miss
        c.fill(0, 0, AccessKind.LOAD)
        c.access(0, 0, AccessKind.LOAD)  # hit
        assert c.stats.demand_accesses == 2
        assert c.stats.demand_hits == 1
        assert c.stats.demand_misses == 1
        assert c.stats.demand_hit_rate == pytest.approx(0.5)

    def test_writebacks_counted_separately(self):
        c = make_cache()
        c.access(0, 0, AccessKind.WRITEBACK)
        assert c.stats.demand_accesses == 0
        assert c.stats.writeback_accesses == 1

    def test_prefetch_counted_separately(self):
        c = make_cache()
        c.access(0, 0, AccessKind.PREFETCH)
        assert c.stats.demand_accesses == 0
        assert c.stats.prefetch_accesses == 1

    def test_mpki(self):
        c = make_cache()
        c.access(0, 0, AccessKind.LOAD)
        assert c.stats.mpki(1000) == pytest.approx(1.0)
        assert c.stats.mpki(0) == 0.0


class _AlwaysBypass(ReplacementPolicy):
    name = "always-bypass"
    supports_bypass = True

    def find_victim(self, set_index, access, tags):
        return BYPASS

    def on_hit(self, set_index, way, access):
        pass

    def on_fill(self, set_index, way, access):
        pass


class TestBypass:
    def test_bypass_skips_fill(self):
        c = make_cache(size=2 * 64, ways=2, policy=_AlwaysBypass())
        c.fill(0, 0, AccessKind.LOAD)
        c.fill(1, 0, AccessKind.LOAD)
        result = c.fill(2, 0, AccessKind.LOAD)  # set full -> policy bypasses
        assert result.bypassed
        assert not c.contains(2)
        assert c.stats.bypasses == 1

    def test_bypass_only_when_set_full(self):
        c = make_cache(size=2 * 64, ways=2, policy=_AlwaysBypass())
        result = c.fill(0, 0, AccessKind.LOAD)
        assert not result.bypassed  # invalid way available -> no policy call


class TestInvalidate:
    def test_invalidate_removes_block(self):
        c = make_cache()
        c.fill(5, 0, AccessKind.LOAD)
        assert c.invalidate(5)
        assert not c.contains(5)

    def test_invalidate_absent_returns_false(self):
        c = make_cache()
        assert not c.invalidate(5)


class _SpyPolicy(LRUPolicy):
    name = "spy"

    def __init__(self):
        super().__init__()
        self.events = []

    def on_hit(self, set_index, way, access):
        self.events.append(("hit", access.block))
        super().on_hit(set_index, way, access)

    def on_fill(self, set_index, way, access):
        self.events.append(("fill", access.block))
        super().on_fill(set_index, way, access)

    def on_eviction(self, set_index, way, victim_block):
        self.events.append(("evict", victim_block))


class TestPolicyHooks:
    def test_hook_sequence(self):
        spy = _SpyPolicy()
        c = make_cache(size=2 * 64, ways=2, policy=spy)
        c.access(0, 0, AccessKind.LOAD)
        c.fill(0, 0, AccessKind.LOAD)
        c.access(0, 0, AccessKind.LOAD)
        c.fill(1, 0, AccessKind.LOAD)
        c.fill(2, 0, AccessKind.LOAD)  # evicts 0 or 1
        kinds = [e[0] for e in spy.events]
        assert kinds == ["fill", "hit", "fill", "evict", "fill"]

    def test_policy_sees_pc(self):
        class PCSpy(LRUPolicy):
            seen_pc = None

            def on_fill(self, set_index, way, access):
                PCSpy.seen_pc = access.pc
                super().on_fill(set_index, way, access)

        c = make_cache(policy=PCSpy())
        c.fill(0, 0xDEAD, AccessKind.LOAD)
        assert PCSpy.seen_pc == 0xDEAD
