"""Behavioural tests for the RRIP family (SRRIP, BRRIP, DRRIP)."""

import pytest

from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.rrip import (
    BRRIP_LONG_PERIOD,
    RRPV_MAX,
    BRRIPPolicy,
    DRRIPPolicy,
    SRRIPPolicy,
)
from repro.policies.basic import LRUPolicy
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD


def one_set_cache(policy, ways=4) -> Cache:
    return Cache("T", ways * 64, ways, policy)


def touch(cache, block) -> bool:
    result = cache.access(block, 0, LOAD)
    if not result.hit:
        cache.fill(block, 0, LOAD)
    return result.hit


class TestSRRIPMechanics:
    def test_insertion_rrpv_is_long(self):
        p = SRRIPPolicy()
        p.initialize(1, 4)
        p.on_fill(0, 0, PolicyAccess(1, 0, LOAD))
        assert p._rrpv[0][0] == RRPV_MAX - 1

    def test_hit_promotes_to_zero(self):
        p = SRRIPPolicy()
        p.initialize(1, 4)
        p.on_fill(0, 0, PolicyAccess(1, 0, LOAD))
        p.on_hit(0, 0, PolicyAccess(1, 0, LOAD))
        assert p._rrpv[0][0] == 0

    def test_victim_is_distant_line(self):
        p = SRRIPPolicy()
        p.initialize(1, 2)
        p._rrpv[0] = [RRPV_MAX, 0]
        assert p.find_victim(0, PolicyAccess(9, 0, LOAD), [1, 2]) == 0

    def test_aging_when_no_distant_line(self):
        p = SRRIPPolicy()
        p.initialize(1, 2)
        p._rrpv[0] = [1, 2]
        victim = p.find_victim(0, PolicyAccess(9, 0, LOAD), [1, 2])
        assert victim == 1  # aged until way 1 reached RRPV_MAX
        assert p._rrpv[0] == [2, RRPV_MAX]


class TestScanResistance:
    def test_srrip_protects_working_set_from_scan(self):
        """Resident set + one-shot scan: SRRIP must out-hit LRU."""
        ways = 8
        resident = list(range(4))
        scan = list(range(100, 140))
        pattern = []
        for i in range(40):
            pattern.extend(resident)
            pattern.append(scan[i])
        lru = one_set_cache(LRUPolicy(), ways=ways)
        srrip = one_set_cache(SRRIPPolicy(), ways=ways)
        lru_hits = sum(touch(lru, b) for b in pattern)
        srrip_hits = sum(touch(srrip, b) for b in pattern)
        assert srrip_hits >= lru_hits


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        p = BRRIPPolicy()
        p.initialize(1, 4)
        inserted = []
        for i in range(BRRIP_LONG_PERIOD * 2):
            p.on_fill(0, i % 4, PolicyAccess(i, 0, LOAD))
            inserted.append(p._rrpv[0][i % 4])
        distant = sum(1 for r in inserted if r == RRPV_MAX)
        assert distant == len(inserted) - 2  # one long insert per period

    def test_beats_lru_on_thrash(self):
        """Cyclic set slightly above capacity: BRRIP keeps a resident subset."""
        pattern = list(range(12)) * 30
        lru = one_set_cache(LRUPolicy(), ways=8)
        brrip = one_set_cache(BRRIPPolicy(), ways=8)
        lru_hits = sum(touch(lru, b) for b in pattern)
        brrip_hits = sum(touch(brrip, b) for b in pattern)
        assert lru_hits == 0
        assert brrip_hits > 50


class TestDRRIP:
    def test_leader_sets_exist_for_large_caches(self):
        p = DRRIPPolicy()
        p.initialize(1024, 16)
        roles = set(p._leader)
        assert 1 in roles and -1 in roles and 0 in roles
        assert sum(1 for r in p._leader if r == 1) == 32
        assert sum(1 for r in p._leader if r == -1) == 32

    def test_leader_sets_modulo_fallback_small_cache(self):
        p = DRRIPPolicy()
        p.initialize(64, 4)
        assert p._leader[0] == 1
        assert p._leader[1] == -1

    def test_psel_saturates(self):
        p = DRRIPPolicy()
        p.initialize(1024, 16)
        srrip_leader = p._leader.index(1)
        for _ in range(2000):
            p.record_demand_miss(srrip_leader)
        assert p._psel == p._psel_max
        brrip_leader = p._leader.index(-1)
        for _ in range(3000):
            p.record_demand_miss(brrip_leader)
        assert p._psel == 0

    def test_followers_adopt_winning_component(self):
        p = DRRIPPolicy()
        p.initialize(1024, 16)
        follower = p._leader.index(0)
        # Force PSEL low -> SRRIP wins -> followers insert RRPV_MAX-1.
        p._psel = 0
        assert p._insertion_rrpv(follower, PolicyAccess(0, 0, LOAD)) == RRPV_MAX - 1
        # Force PSEL high -> BRRIP wins -> distant insertions dominate.
        p._psel = p._psel_max
        values = [
            p._insertion_rrpv(follower, PolicyAccess(0, 0, LOAD)) for _ in range(16)
        ]
        assert values.count(RRPV_MAX) >= 14

    def test_set_duelling_learns_brrip_on_thrash(self):
        """Multi-set cyclic thrash: DRRIP followers must adopt BRRIP.

        A single-set cache cannot duel (the set is a permanent leader), so
        this uses 64 sets with a cyclic working set of 12 blocks per set
        against 8 ways — SRRIP gets almost nothing, BRRIP retains a
        subset, and DRRIP must end up much closer to BRRIP than to SRRIP.
        """
        num_sets, ways, blocks_per_set = 64, 8, 12
        pattern = [
            s + num_sets * k
            for _ in range(6)
            for k in range(blocks_per_set)
            for s in range(num_sets)
        ]
        results = {}
        for name, policy in (
            ("srrip", SRRIPPolicy()),
            ("brrip", BRRIPPolicy()),
            ("drrip", DRRIPPolicy()),
        ):
            c = Cache("T", num_sets * ways * 64, ways, policy)
            results[name] = sum(touch(c, b) for b in pattern)
        assert results["brrip"] > results["srrip"]
        midpoint = (results["srrip"] + results["brrip"]) / 2
        assert results["drrip"] > midpoint
