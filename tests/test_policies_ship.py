"""Behavioural tests for SHiP (signature-based hit prediction)."""

from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.basic import LRUPolicy
from repro.policies.rrip import RRPV_MAX
from repro.policies.ship import SHCT_MAX, SHiPPolicy, pc_signature
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD
WB = AccessKind.WRITEBACK


def one_set_cache(policy, ways=4) -> Cache:
    return Cache("T", ways * 64, ways, policy)


def touch(cache, block, pc=0) -> bool:
    result = cache.access(block, pc, LOAD)
    if not result.hit:
        cache.fill(block, pc, LOAD)
    return result.hit


class TestSignature:
    def test_signature_is_14_bits(self):
        assert 0 <= pc_signature(0xFFFFFFFFFFFF) < (1 << 14)

    def test_signature_is_deterministic(self):
        assert pc_signature(0x1234) == pc_signature(0x1234)

    def test_different_pcs_usually_differ(self):
        signatures = {pc_signature(pc) for pc in range(0, 4096 * 4, 4)}
        assert len(signatures) > 1000


class TestTraining:
    def test_hit_increments_signature_counter(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        start = p._shct[sig]
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        p.on_hit(0, 0, PolicyAccess(1, 0x400, LOAD))
        assert p._shct[sig] == min(start + 1, SHCT_MAX)

    def test_only_first_reuse_trains(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        p._shct[sig] = 0
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        p.on_hit(0, 0, PolicyAccess(1, 0x400, LOAD))
        p.on_hit(0, 0, PolicyAccess(1, 0x400, LOAD))
        assert p._shct[sig] == 1  # second hit must not train again

    def test_dead_eviction_decrements(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        start = p._shct[sig]
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        p.on_eviction(0, 0, 1)  # never reused
        assert p._shct[sig] == max(start - 1, 0)

    def test_reused_eviction_does_not_decrement(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        p.on_hit(0, 0, PolicyAccess(1, 0x400, LOAD))
        counter = p._shct[sig]
        p.on_eviction(0, 0, 1)
        assert p._shct[sig] == counter


class TestInsertion:
    def test_dead_signature_inserts_distant(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        p._shct[sig] = 0
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        assert p._rrpv[0][0] == RRPV_MAX

    def test_live_signature_inserts_long(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        p._shct[sig] = SHCT_MAX
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        assert p._rrpv[0][0] == RRPV_MAX - 1

    def test_writeback_hit_neither_promotes_nor_trains(self):
        """Regression for the pc-table-hygiene lint finding.

        A writeback touch of a resident line carries pc == 0 and must be
        invisible to the predictor (ChampSim reference): the line keeps
        its RRPV and the filler's signature counter keeps its value.
        """
        p = SHiPPolicy()
        p.initialize(1, 4)
        sig = pc_signature(0x400)
        p._shct[sig] = 1
        p.on_fill(0, 0, PolicyAccess(1, 0x400, LOAD))
        rrpv_before = p._rrpv[0][0]
        p.on_hit(0, 0, PolicyAccess(1, 0, WB))
        assert p._rrpv[0][0] == rrpv_before  # no promotion to 0
        assert p._shct[sig] == 1  # no SHCT training
        # The line still counts as never-reused: a dead eviction detrains.
        p.on_eviction(0, 0, 1)
        assert p._shct[sig] == 0

    def test_writeback_inserts_distant_and_untracked(self):
        p = SHiPPolicy()
        p.initialize(1, 4)
        p.on_fill(0, 0, PolicyAccess(1, 0, WB))
        assert p._rrpv[0][0] == RRPV_MAX
        # Evicting a writeback line must not train any signature.
        before = list(p._shct)
        p.on_eviction(0, 0, 1)
        assert p._shct == before


class TestEndToEnd:
    def test_learns_to_deprioritize_scan_pc(self):
        """Scan PC trains to dead; working-set PCs keep their lines."""
        ways = 8
        ws_pcs = [0x100, 0x104, 0x108, 0x10C]
        scan_pc = 0x999
        c = one_set_cache(SHiPPolicy(), ways=ways)
        scan_block = 1000
        hits_late = 0
        for round_ in range(200):
            for i, pc in enumerate(ws_pcs):
                hit = touch(c, i, pc)
                if round_ > 100:
                    hits_late += hit
            touch(c, scan_block, scan_pc)
            scan_block += 1
        # After training, the working set must be nearly always resident.
        assert hits_late >= 0.95 * 4 * 99

    def test_outperforms_srrip_on_mixed_pc_workload(self):
        from repro.policies.rrip import SRRIPPolicy

        ways = 8
        ws_pcs = [0x100, 0x104]
        scan_pc = 0x999

        def run(policy):
            c = one_set_cache(policy, ways=ways)
            hits = 0
            scan_block = 1000
            for _ in range(300):
                for i, pc in enumerate(ws_pcs):
                    hits += touch(c, i, pc)
                # burst of scans that would push the set out under SRRIP
                for _ in range(6):
                    touch(c, scan_block, scan_pc)
                    scan_block += 1
            return hits

        assert run(SHiPPolicy()) >= run(SRRIPPolicy())
