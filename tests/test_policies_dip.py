"""Behavioural tests for the insertion-policy family (LIP/BIP/DIP)."""

from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.basic import LRUPolicy
from repro.policies.dip import BIP_EPSILON_PERIOD, BIPPolicy, DIPPolicy, LIPPolicy
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD


def one_set_cache(policy, ways=4) -> Cache:
    return Cache("T", ways * 64, ways, policy)


def touch(cache, block) -> bool:
    result = cache.access(block, 0, LOAD)
    if not result.hit:
        cache.fill(block, 0, LOAD)
    return result.hit


class TestLIP:
    def test_new_block_is_next_victim(self):
        c = one_set_cache(LIPPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)
        touch(c, 2)  # inserted at LRU -> 2 must be evicted next
        touch(c, 3)
        assert not c.contains(2)
        assert c.contains(3)

    def test_hit_promotes_to_mru(self):
        c = one_set_cache(LIPPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)
        touch(c, 1)  # promote 1; 0 now LRU... but 1 was inserted at LRU
        touch(c, 2)  # 2 inserted at LRU
        touch(c, 3)  # evicts 2 (at LRU), keeps 1
        assert c.contains(1)

    def test_protects_resident_set_from_scan(self):
        """LIP must beat LRU when a scan runs over a resident set."""
        pattern = []
        scan_block = 100
        for _ in range(80):
            pattern.extend([0, 1, 2])
            # A scan burst longer than the spare capacity: LRU evicts the
            # resident set, LIP sacrifices only the LRU slot.
            for _ in range(5):
                pattern.append(scan_block)
                scan_block += 1
        lip = one_set_cache(LIPPolicy(), ways=4)
        lru = one_set_cache(LRUPolicy(), ways=4)
        lip_hits = sum(touch(lip, b) for b in pattern)
        lru_hits = sum(touch(lru, b) for b in pattern)
        assert lip_hits > lru_hits


class TestBIP:
    def test_epsilon_mru_insertions(self):
        p = BIPPolicy()
        p.initialize(1, 4)
        mru_count = 0
        for i in range(2 * BIP_EPSILON_PERIOD):
            p.on_fill(0, i % 4, PolicyAccess(i, 0, LOAD))
            if p._stamp[0][i % 4] == p._clock and p._clock > 0:
                mru_count += 1
        assert mru_count == 2  # exactly one per epsilon period

    def test_retains_subset_of_thrash(self):
        pattern = list(range(10)) * 40
        bip = one_set_cache(BIPPolicy(), ways=8)
        lru = one_set_cache(LRUPolicy(), ways=8)
        bip_hits = sum(touch(bip, b) for b in pattern)
        lru_hits = sum(touch(lru, b) for b in pattern)
        assert lru_hits == 0
        assert bip_hits > 50


class TestDIP:
    def test_leader_roles_assigned(self):
        p = DIPPolicy()
        p.initialize(1024, 16)
        assert sum(1 for r in p._leader if r == 1) == 32
        assert sum(1 for r in p._leader if r == -1) == 32

    def test_psel_moves_with_leader_misses(self):
        p = DIPPolicy()
        p.initialize(64, 4)
        lru_leader = p._leader.index(1)
        start = p._psel
        p.record_demand_miss(lru_leader)
        assert p._psel == start + 1
        bip_leader = p._leader.index(-1)
        p.record_demand_miss(bip_leader)
        p.record_demand_miss(bip_leader)
        assert p._psel == start - 1

    def test_followers_track_winner_on_thrash(self):
        """Multi-set thrash: DIP must land near BIP, far above LRU."""
        num_sets, ways = 64, 8
        pattern = [
            s + num_sets * k
            for _ in range(6)
            for k in range(12)
            for s in range(num_sets)
        ]
        results = {}
        for name, policy in (("lru", LRUPolicy()), ("bip", BIPPolicy()), ("dip", DIPPolicy())):
            c = Cache("T", num_sets * ways * 64, ways, policy)
            results[name] = sum(touch(c, b) for b in pattern)
        assert results["bip"] > results["lru"]
        assert results["dip"] > (results["lru"] + results["bip"]) / 2

    def test_registry_exposure(self):
        from repro.policies import available_policies, make_policy

        for name in ("lip", "bip", "dip"):
            assert name in available_policies()
            assert make_policy(name).name == name
