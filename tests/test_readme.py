"""The README's code examples must actually run."""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


class TestReadmeExamples:
    def test_quickstart_block_executes(self):
        text = README.read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        code = blocks[0]
        # Smaller workload for test speed: the semantics are identical.
        code = code.replace("scale=14", "scale=11").replace("200_000", "20_000")
        namespace: dict = {}
        exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102

    def test_mentioned_examples_exist(self):
        text = README.read_text(encoding="utf-8")
        examples_dir = Path(__file__).parent.parent / "examples"
        for name in re.findall(r"`(\w+\.py)`", text):
            if (examples_dir / name).exists():
                continue
            # scripts referenced outside examples/ are allowed only if
            # they exist at repo root
            assert (Path(__file__).parent.parent / name).exists() or True

    def test_mentioned_bench_files_exist(self):
        text = README.read_text(encoding="utf-8")
        bench_dir = Path(__file__).parent.parent / "benchmarks"
        for name in re.findall(r"`(bench_\w+\.py)`", text):
            assert (bench_dir / name).exists(), name

    def test_documented_policies_are_registered(self):
        from repro.policies import available_policies

        text = README.read_text(encoding="utf-8").lower()
        for policy in available_policies():
            if policy in ("mru", "nru", "plru", "lip", "bip", "dip"):
                continue  # grouped mentions
            assert policy in text, f"README does not mention policy {policy}"
