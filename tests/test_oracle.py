"""Tests for the two-pass Belady OPT harness."""

import numpy as np
import pytest

from repro.core.oracle import RecordingLRUPolicy, record_llc_stream, simulate_with_opt
from repro.core.simulator import simulate
from repro.trace import synthetic


class TestRecording:
    def test_recorder_captures_llc_stream(self, small_machine):
        t = synthetic.streaming(2000, stride=64)
        stream, lru_result = record_llc_stream(t, config=small_machine)
        # Streaming misses L1/L2 once per block, so the LLC sees roughly
        # one access per block (plus writebacks, of which there are none).
        assert len(stream) > 0
        assert lru_result.policy == "lru+record"

    def test_stream_is_policy_invariant(self, small_machine):
        """The LLC-visible stream must not depend on the LLC policy."""
        t = synthetic.zipf_reuse(5000, num_blocks=1024, seed=4)
        stream_a, _ = record_llc_stream(t, config=small_machine)
        stream_b, _ = record_llc_stream(t, config=small_machine)
        assert np.array_equal(stream_a, stream_b)


class TestOptHarness:
    def test_opt_at_least_matches_lru_hit_rate(self, small_machine):
        t = synthetic.zipf_reuse(8000, num_blocks=1024, seed=5)
        opt, lru = simulate_with_opt(t, config=small_machine)
        assert opt.policy == "opt"
        assert (
            opt.levels["LLC"].demand_hit_rate
            >= lru.levels["LLC"].demand_hit_rate - 1e-9
        )

    def test_opt_beats_lru_on_thrash(self, small_machine):
        # Cyclic set above the 32 KB LLC: LRU gets nothing, OPT pins a subset.
        t = synthetic.strided(20000, stride=64, elements=700)
        opt, lru = simulate_with_opt(t, config=small_machine)
        assert lru.levels["LLC"].demand_hit_rate < 0.05
        assert opt.levels["LLC"].demand_hit_rate > 0.3

    def test_opt_beats_every_online_policy(self, small_machine):
        t = synthetic.zipf_reuse(6000, num_blocks=900, seed=6)
        opt, _ = simulate_with_opt(t, config=small_machine)
        for policy in ("lru", "srrip", "ship", "hawkeye"):
            online = simulate(t, config=small_machine, llc_policy=policy)
            assert (
                opt.levels["LLC"].demand_hit_rate
                >= online.levels["LLC"].demand_hit_rate - 1e-9
            )

    def test_replay_stream_matches_exactly(self, small_machine):
        """The oracle's internal verification must not fire on replay."""
        t = synthetic.working_set_loop(5000, set_bytes=40 * 1024, seed=3)
        # Would raise SimulationError internally on any stream divergence.
        simulate_with_opt(t, config=small_machine)

    def test_no_bypass_variant_runs(self, small_machine):
        t = synthetic.zipf_reuse(3000, num_blocks=512, seed=7)
        opt, lru = simulate_with_opt(t, config=small_machine, allow_bypass=False)
        assert (
            opt.levels["LLC"].demand_hit_rate
            >= lru.levels["LLC"].demand_hit_rate - 1e-9
        )
