"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulate:
    def test_gap_workload(self, capsys):
        rc = main(["simulate", "gap.bfs.10", "--window", "5000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "LLC" in out

    def test_spec_workload_with_policy(self, capsys):
        rc = main(["simulate", "spec06.milc", "--policy", "srrip",
                   "--window", "5000"])
        assert rc == 0
        assert "srrip" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = main(["simulate", "nonsense.z"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_spec_name_lists_available(self, capsys):
        rc = main(["simulate", "spec06.doesnotexist"])
        assert rc == 1
        assert "mcf" in capsys.readouterr().err

    def test_bad_gap_kernel(self, capsys):
        rc = main(["simulate", "gap.zzz"])
        assert rc == 1
        assert "bfs" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gap.bfs.10", "--policy", "nope"])


class TestSweep:
    def test_two_workloads_two_policies(self, capsys):
        rc = main([
            "sweep", "spec06.milc", "gap.cc.10",
            "--policies", "srrip", "brrip", "--window", "5000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Speed-up over LRU" in out
        assert "spec06.milc" in out


class TestLint:
    def test_live_tree_is_clean(self, capsys):
        rc = main(["lint"])
        assert rc == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy-hooks" in out
        assert "pc-writeback-guard" in out

    def test_bad_fixture_fails_with_locations(self, tmp_path, capsys):
        bad = tmp_path / "bad_policy.py"
        bad.write_text(
            "class Broken(ReplacementPolicy):\n"
            "    name = 'broken'\n"
            "\n"
            "    def find_victim(self, set_index, access, tags):\n"
            "        return None\n"
            "\n"
            "    def on_fill(self, set_index, way, access):\n"
            "        self._sig[way] = access.pc & 255\n"
        )
        rc = main(["lint", str(bad)])
        assert rc == 1
        out = capsys.readouterr().out
        assert f"{bad}:5: error [victim-return]" in out
        assert "[pc-writeback-guard]" in out
        assert "hint:" in out

    def test_rule_subset(self, tmp_path, capsys):
        bad = tmp_path / "bad_policy.py"
        bad.write_text(
            "class Broken(ReplacementPolicy):\n"
            "    def find_victim(self, set_index, access, tags):\n"
            "        return None\n"
        )
        rc = main(["lint", str(bad), "--rules", "policy-hooks"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[policy-hooks]" in out
        assert "[victim-return]" not in out

    def test_unknown_rule_fails_cleanly(self, capsys):
        rc = main(["lint", "--rules", "nope"])
        assert rc == 1
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_fails_cleanly(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "absent.py")])
        assert rc == 1
        assert "does not exist" in capsys.readouterr().err

    def test_non_python_path_fails_cleanly(self, tmp_path, capsys):
        stray = tmp_path / "notes.txt"
        stray.write_text("not code")
        rc = main(["lint", str(stray)])
        assert rc == 1
        assert "not a Python file" in capsys.readouterr().err

    def test_strict_promotes_warnings(self, tmp_path):
        warn_only = tmp_path / "hot.py"
        warn_only.write_text(
            "def lookup(tags, block):  # hot\n"
            "    return [t for t in tags if t == block]\n"
        )
        assert main(["lint", str(warn_only)]) == 0
        assert main(["lint", str(warn_only), "--strict"]) == 1


class TestExperiment:
    def test_table1(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        assert "Cascade" in capsys.readouterr().out or True
        # the rendered table at least mentions the LLC
        # (re-capture since readouterr consumed it above)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
