"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulate:
    def test_gap_workload(self, capsys):
        rc = main(["simulate", "gap.bfs.10", "--window", "5000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "LLC" in out

    def test_spec_workload_with_policy(self, capsys):
        rc = main(["simulate", "spec06.milc", "--policy", "srrip",
                   "--window", "5000"])
        assert rc == 0
        assert "srrip" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = main(["simulate", "nonsense.z"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_spec_name_lists_available(self, capsys):
        rc = main(["simulate", "spec06.doesnotexist"])
        assert rc == 1
        assert "mcf" in capsys.readouterr().err

    def test_bad_gap_kernel(self, capsys):
        rc = main(["simulate", "gap.zzz"])
        assert rc == 1
        assert "bfs" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gap.bfs.10", "--policy", "nope"])


class TestSweep:
    def test_two_workloads_two_policies(self, capsys):
        rc = main([
            "sweep", "spec06.milc", "gap.cc.10",
            "--policies", "srrip", "brrip", "--window", "5000",
            "--jobs", "1", "--no-cache",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Speed-up over LRU" in captured.out
        assert "spec06.milc" in captured.out
        assert "6 simulated" in captured.err  # 2 workloads x (lru + 2 policies)

    def test_sweep_caches_across_invocations(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["sweep", "gap.cc.10", "--policies", "srrip",
                "--window", "5000", "--jobs", "1"]
        assert main(argv) == 0
        assert "2 simulated" in capsys.readouterr().err
        assert main(argv) == 0
        assert "2 from cache, 0 simulated" in capsys.readouterr().err


class TestCache:
    def test_stats_clear_prune_cycle(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        main(["sweep", "gap.cc.10", "--policies", "srrip",
              "--window", "5000", "--jobs", "1"])
        capsys.readouterr()

        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:      2" in out
        assert "current salt" in out

        assert main(["cache", "prune"]) == 0
        assert "pruned 0 stale entries" in capsys.readouterr().out

        assert main(["cache", "clear"]) == 0
        assert "removed 2 entries" in capsys.readouterr().out

    def test_salt_is_printable_and_stable(self, capsys):
        assert main(["cache", "salt"]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["cache", "salt"]) == 0
        second = capsys.readouterr().out.strip()
        assert first == second
        assert len(first) == 16

    def test_explicit_cache_dir_flag(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "x")]) == 0
        assert "entries:      0" in capsys.readouterr().out


class TestLint:
    def test_live_tree_is_clean(self, capsys):
        rc = main(["lint"])
        assert rc == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy-hooks" in out
        assert "pc-writeback-guard" in out

    def test_bad_fixture_fails_with_locations(self, tmp_path, capsys):
        bad = tmp_path / "bad_policy.py"
        bad.write_text(
            "class Broken(ReplacementPolicy):\n"
            "    name = 'broken'\n"
            "\n"
            "    def find_victim(self, set_index, access, tags):\n"
            "        return None\n"
            "\n"
            "    def on_fill(self, set_index, way, access):\n"
            "        self._sig[way] = access.pc & 255\n"
        )
        rc = main(["lint", str(bad)])
        assert rc == 1
        out = capsys.readouterr().out
        assert f"{bad}:5: error [victim-return]" in out
        assert "[pc-writeback-guard]" in out
        assert "hint:" in out

    def test_rule_subset(self, tmp_path, capsys):
        bad = tmp_path / "bad_policy.py"
        bad.write_text(
            "class Broken(ReplacementPolicy):\n"
            "    def find_victim(self, set_index, access, tags):\n"
            "        return None\n"
        )
        rc = main(["lint", str(bad), "--rules", "policy-hooks"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[policy-hooks]" in out
        assert "[victim-return]" not in out

    def test_unknown_rule_fails_cleanly(self, capsys):
        rc = main(["lint", "--rules", "nope"])
        assert rc == 1
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_fails_cleanly(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "absent.py")])
        assert rc == 1
        assert "does not exist" in capsys.readouterr().err

    def test_non_python_path_fails_cleanly(self, tmp_path, capsys):
        stray = tmp_path / "notes.txt"
        stray.write_text("not code")
        rc = main(["lint", str(stray)])
        assert rc == 1
        assert "not a Python file" in capsys.readouterr().err

    def test_strict_promotes_warnings(self, tmp_path):
        warn_only = tmp_path / "hot.py"
        warn_only.write_text(
            "def lookup(tags, block):  # hot\n"
            "    return [t for t in tags if t == block]\n"
        )
        assert main(["lint", str(warn_only)]) == 0
        assert main(["lint", str(warn_only), "--strict"]) == 1

    def test_strict_full_tree_gate_passes(self, capsys):
        # The CI gate: the live tree under the checked-in baseline.
        assert main(["lint", "--strict"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().err

    def test_no_baseline_surfaces_suppressed_findings(self, capsys):
        assert main(["lint"]) == 0
        baselined_run = capsys.readouterr().err
        assert main(["lint", "--no-baseline"]) == 0  # warnings, not errors
        raw_run = capsys.readouterr().err
        assert "0 warning(s)" in baselined_run
        assert "0 warning(s)" not in raw_run

    def test_format_json_round_trips(self, capsys):
        import json

        from repro.lint import parse_json

        assert main(["lint", "--format", "json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["version"] == 1
        assert doc["summary"]["errors"] == 0
        assert parse_json(out) == []

    def test_format_markdown_renders_summary(self, capsys):
        assert main(["lint", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("## repro lint")
        assert "baselined" in out

    def test_strict_appends_github_step_summary(self, tmp_path, monkeypatch,
                                                capsys):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert main(["lint", "--strict"]) == 0
        capsys.readouterr()
        assert "## repro lint" in summary.read_text()

    def test_non_strict_does_not_write_step_summary(self, tmp_path,
                                                    monkeypatch, capsys):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert main(["lint"]) == 0
        capsys.readouterr()
        assert not summary.exists()

    def test_explicit_baseline_flag_applies_to_paths(self, tmp_path, capsys):
        warn_only = tmp_path / "hot.py"
        warn_only.write_text(
            "def lookup(tags, block):  # hot\n"
            "    return [t for t in tags if t == block]\n"
        )
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "hot-alloc | hot.py | comprehension | expires=2030-01-01 "
            "| known hot helper\n"
        )
        rc = main(["lint", str(warn_only), "--strict",
                   "--baseline", str(baseline)])
        capsys.readouterr()
        assert rc == 0

    def test_missing_baseline_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["lint", "--baseline", str(tmp_path / "absent.txt")])
        assert rc == 1
        assert "baseline file not found" in capsys.readouterr().err

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "error-severity findings" in out


class TestSample:
    def test_plan_inspection(self, capsys):
        rc = main(["sample", "gap.cc.10", "--window", "5000", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "representative" in out
        assert "interval" in out
        assert "reduction" in out

    def test_plan_json_written(self, capsys, tmp_path):
        target = tmp_path / "plan.json"
        rc = main(["sample", "gap.cc.10", "--window", "5000",
                   "--json", str(target)])
        assert rc == 0
        import json

        doc = json.loads(target.read_text())
        assert doc["spec"]["intervals"] == 4
        assert doc["intervals"]

    def test_custom_spec_string(self, capsys):
        rc = main(["sample", "gap.cc.10", "--window", "5000",
                   "--spec", "k=2,window=500,warm=0"])
        assert rc == 0
        assert "of 500 accesses" in capsys.readouterr().out

    def test_bad_spec_fails_cleanly(self, capsys):
        rc = main(["sample", "gap.cc.10", "--spec", "clusters=4"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_no_workload_without_validate_fails(self, capsys):
        rc = main(["sample"])
        assert rc == 1
        assert "at least one workload" in capsys.readouterr().err

    def test_sweep_with_sampling_flag(self, capsys):
        rc = main([
            "sweep", "gap.cc.10", "--policies", "srrip",
            "--window", "5000", "--jobs", "1", "--no-cache",
            "--sampling", "k=2,window=500,warm=0",
        ])
        assert rc == 0
        assert "Speed-up over LRU" in capsys.readouterr().out


class TestExperiment:
    def test_table1(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        assert "Cascade" in capsys.readouterr().out or True
        # the rendered table at least mentions the LLC
        # (re-capture since readouterr consumed it above)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestDurableSweep:
    """CLI surface of the run journal, resume, and cache verify --json."""

    def test_journalled_sweep_prints_run_id_and_resumes(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journal"))
        argv = ["sweep", "gap.cc.10", "--policies", "srrip",
                "--window", "5000", "--jobs", "1"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "journalled at" in err
        run_id = err.split("run ")[-1].split(" journalled")[0]
        assert len(run_id) == 16

        # --resume with no workloads rebuilds the sweep from the header;
        # everything is journalled, so it completes on cache hits alone.
        assert main(["sweep", "--resume", run_id]) == 0
        err = capsys.readouterr().err
        assert f"resuming run {run_id}" in err
        assert "2 cell(s) already journalled" in err

    def test_sweep_without_workloads_or_resume_fails(self, capsys):
        rc = main(["sweep"])
        assert rc == 1
        assert "at least one workload" in capsys.readouterr().err

    def test_resume_with_no_cache_rejected(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journal"))
        rc = main(["sweep", "--resume", "0" * 16, "--no-cache"])
        assert rc == 1
        assert "--resume needs the result cache" in capsys.readouterr().err

    def test_resume_unknown_run_id_fails_cleanly(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journal"))
        rc = main(["sweep", "--resume", "deadbeefdeadbeef"])
        assert rc == 1
        assert "deadbeefdeadbeef" in capsys.readouterr().err

    def test_cache_verify_json_clean_and_corrupt(
        self, capsys, tmp_path, monkeypatch
    ):
        import json
        from pathlib import Path

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journal"))
        main(["sweep", "gap.cc.10", "--policies", "srrip",
              "--window", "5000", "--jobs", "1"])
        capsys.readouterr()

        assert main(["cache", "verify", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["checked"] == 2

        entry = next(p for p in Path(tmp_path).rglob("*.json")
                     if p.parent.name != "quarantine")
        entry.write_text(entry.read_text()[:-20], encoding="utf-8")
        assert main(["cache", "verify", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert report["quarantined"] == 1

        # The corrupt entry is now quarantined; verify keeps failing on
        # the quarantine evidence until it is inspected and cleared.
        assert main(["cache", "verify", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["previously_quarantined"] == 1

    def test_chaos_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "nope"])
