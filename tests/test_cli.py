"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulate:
    def test_gap_workload(self, capsys):
        rc = main(["simulate", "gap.bfs.10", "--window", "5000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "LLC" in out

    def test_spec_workload_with_policy(self, capsys):
        rc = main(["simulate", "spec06.milc", "--policy", "srrip",
                   "--window", "5000"])
        assert rc == 0
        assert "srrip" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = main(["simulate", "nonsense.z"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_spec_name_lists_available(self, capsys):
        rc = main(["simulate", "spec06.doesnotexist"])
        assert rc == 1
        assert "mcf" in capsys.readouterr().err

    def test_bad_gap_kernel(self, capsys):
        rc = main(["simulate", "gap.zzz"])
        assert rc == 1
        assert "bfs" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gap.bfs.10", "--policy", "nope"])


class TestSweep:
    def test_two_workloads_two_policies(self, capsys):
        rc = main([
            "sweep", "spec06.milc", "gap.cc.10",
            "--policies", "srrip", "brrip", "--window", "5000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Speed-up over LRU" in out
        assert "spec06.milc" in out


class TestExperiment:
    def test_table1(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        assert "Cascade" in capsys.readouterr().out or True
        # the rendered table at least mentions the LLC
        # (re-capture since readouterr consumed it above)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
