"""Baseline and findings-document tests: round-trips, expiry, output formats."""

import datetime

import pytest

from repro.lint import (
    BaselineError,
    Finding,
    Severity,
    apply_baseline,
    parse_baseline,
    parse_json,
    render_json,
    render_markdown,
    summarize,
)


def finding(rule="snapshot-completeness", path="src/repro/policies/x.py",
            line=10, message="X.snapshot_state() does not cover _table",
            severity=Severity.WARNING):
    return Finding(rule=rule, severity=severity, path=path, line=line,
                   message=message, hint="report an aggregate")


class TestFindingsJson:
    def test_round_trip_preserves_everything(self):
        findings = [
            finding(),
            finding(rule="salt-closure", severity=Severity.ERROR, line=3),
            finding(rule="baseline-unused", severity=Severity.NOTE),
        ]
        assert parse_json(render_json(findings)) == findings

    def test_document_carries_version_and_summary(self):
        import json

        doc = json.loads(render_json([finding()], suppressed=2))
        assert doc["version"] == 1
        assert doc["summary"] == {
            "errors": 0, "warnings": 1, "info": 0, "suppressed": 2,
        }

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            parse_json('{"version": 99, "findings": []}')

    def test_summarize_counts_by_severity(self):
        counts = summarize([
            finding(severity=Severity.ERROR),
            finding(severity=Severity.WARNING),
            finding(severity=Severity.NOTE),
        ])
        assert counts == {"errors": 1, "warnings": 1, "info": 1}


class TestBaselineParsing:
    def test_entries_parse_with_expiry_and_reason(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# comment\n"
            "\n"
            "snapshot-completeness | policies/x.py | _table "
            "| expires=2030-01-01 | aggregate pending\n"
        )
        entries = parse_baseline(path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.rule == "snapshot-completeness"
        assert entry.path_suffix == "policies/x.py"
        assert entry.expires == datetime.date(2030, 1, 1)
        assert entry.lineno == 3

    @pytest.mark.parametrize("line, error", [
        ("only | three | fields", "5 '|'-separated fields"),
        ("r | p | m | 2030-01-01 | why", "expires=YYYY-MM-DD"),
        ("r | p | m | expires=someday | why", "bad expiry date"),
        ("r | p |  | expires=2030-01-01 | why", "non-empty"),
    ])
    def test_malformed_entries_rejected(self, tmp_path, line, error):
        path = tmp_path / "baseline.txt"
        path.write_text(line + "\n")
        with pytest.raises(BaselineError, match=error):
            parse_baseline(path)


class TestApplyBaseline:
    def entry_file(self, tmp_path, expires):
        path = tmp_path / "baseline.txt"
        path.write_text(
            f"snapshot-completeness | policies/x.py | _table "
            f"| expires={expires} | aggregate pending\n"
        )
        return path

    def test_live_entry_suppresses_matching_finding(self, tmp_path):
        path = self.entry_file(tmp_path, "2030-01-01")
        kept, suppressed = apply_baseline(
            [finding()], parse_baseline(path), path,
            today=datetime.date(2026, 8, 8),
        )
        assert kept == []
        assert suppressed == 1

    def test_expired_entry_turns_into_an_error(self, tmp_path):
        path = self.entry_file(tmp_path, "2026-01-01")
        kept, suppressed = apply_baseline(
            [finding()], parse_baseline(path), path,
            today=datetime.date(2026, 8, 8),
        )
        assert suppressed == 0
        rules = sorted(f.rule for f in kept)
        assert rules == ["baseline-expired", "snapshot-completeness"]
        expired = next(f for f in kept if f.rule == "baseline-expired")
        assert expired.severity == Severity.ERROR
        assert expired.path == str(path)
        assert expired.line == 1  # the baseline entry's own line

    def test_unused_entry_is_a_note_not_an_error(self, tmp_path):
        path = self.entry_file(tmp_path, "2030-01-01")
        kept, suppressed = apply_baseline(
            [], parse_baseline(path), path, today=datetime.date(2026, 8, 8),
        )
        assert suppressed == 0
        assert [f.rule for f in kept] == ["baseline-unused"]
        assert kept[0].severity == Severity.NOTE

    def test_expired_but_unmatched_entry_is_only_unused(self, tmp_path):
        # An expired suppression with nothing to suppress must not fail
        # the build; it is just stale.
        path = self.entry_file(tmp_path, "2026-01-01")
        kept, _ = apply_baseline(
            [], parse_baseline(path), path, today=datetime.date(2026, 8, 8),
        )
        assert [f.rule for f in kept] == ["baseline-unused"]

    def test_mismatched_rule_or_path_not_suppressed(self, tmp_path):
        path = self.entry_file(tmp_path, "2030-01-01")
        entries = parse_baseline(path)
        other_rule = finding(rule="salt-closure")
        other_path = finding(path="src/repro/policies/y.py")
        kept, suppressed = apply_baseline(
            [other_rule, other_path], entries, path,
            today=datetime.date(2026, 8, 8),
        )
        assert suppressed == 0
        assert other_rule in kept and other_path in kept


class TestMarkdown:
    def test_table_escapes_pipes_and_counts(self):
        noisy = finding(message="uses | pipes")
        text = render_markdown([noisy], suppressed=3)
        assert "(3 baselined)" in text
        assert "uses \\| pipes" in text

    def test_clean_run_renders_a_clean_line(self):
        assert "clean under the current baseline" in render_markdown([])
