"""Round-trip and error-path tests for trace persistence."""

import json

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.io import (
    FORMAT_VERSION,
    load_trace,
    payload_checksum,
    save_trace,
)

from conftest import make_trace


def write_raw_npz(path, records, meta):
    """Assemble a trace archive by hand, bypassing save_trace's meta."""
    with open(path, "wb") as f:
        np.savez(
            f,
            records=records,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
    return path


class TestRoundTrip:
    def test_records_survive(self, tmp_path):
        t = make_trace([0, 64, 128], pcs=[1, 2, 3], kinds=[0, 1, 0], gaps=[1, 2, 3])
        path = save_trace(t, tmp_path / "t")
        loaded = load_trace(path)
        assert np.array_equal(loaded.records, t.records)

    def test_name_and_info_survive(self, tmp_path):
        t = make_trace([0], name="gap.bfs")
        t.info["kernel"] = "bfs"
        loaded = load_trace(save_trace(t, tmp_path / "t"))
        assert loaded.name == "gap.bfs"
        assert loaded.info["kernel"] == "bfs"

    def test_npz_suffix_added(self, tmp_path):
        path = save_trace(make_trace([0]), tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_empty_trace_roundtrip(self, tmp_path):
        t = make_trace([])
        loaded = load_trace(save_trace(t, tmp_path / "e"))
        assert len(loaded) == 0


class TestErrorPaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path / "nope.npz")

    def test_not_a_trace_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(TraceFormatError, match="not a repro trace"):
            load_trace(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_version_is_checked(self, tmp_path):
        t = make_trace([0])
        meta = {"version": FORMAT_VERSION + 1, "name": "x", "info": {}}
        path = write_raw_npz(tmp_path / "future.npz", t.records, meta)
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)


class TestIntegrity:
    def test_saved_trace_carries_payload_checksum(self, tmp_path):
        t = make_trace([0, 64, 128])
        path = save_trace(t, tmp_path / "t")
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
        assert meta["version"] == FORMAT_VERSION
        assert meta["payload_sha256"] == payload_checksum(t.records)

    def test_truncated_file_raises_structured_error(self, tmp_path):
        path = save_trace(make_trace(list(range(0, 64 * 500, 64))), tmp_path / "t")
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * 0.6)])
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert str(path) in str(excinfo.value)

    def test_tampered_payload_detected(self, tmp_path):
        t = make_trace([0, 64, 128])
        meta = {
            "version": FORMAT_VERSION,
            "name": t.name,
            "info": t.info,
            # checksum of *different* records than the ones stored
            "payload_sha256": payload_checksum(make_trace([1, 2, 3]).records),
        }
        path = write_raw_npz(tmp_path / "t.npz", t.records, meta)
        with pytest.raises(TraceFormatError, match="payload checksum mismatch"):
            load_trace(path)

    def test_v1_file_without_checksum_still_loads(self, tmp_path):
        t = make_trace([0, 64], name="legacy")
        meta = {"version": 1, "name": "legacy", "info": {}}
        path = write_raw_npz(tmp_path / "v1.npz", t.records, meta)
        loaded = load_trace(path)
        assert np.array_equal(loaded.records, t.records)
        assert loaded.name == "legacy"

    def test_v2_file_missing_checksum_rejected(self, tmp_path):
        t = make_trace([0])
        meta = {"version": FORMAT_VERSION, "name": "x", "info": {}}
        path = write_raw_npz(tmp_path / "bad.npz", t.records, meta)
        with pytest.raises(TraceFormatError, match="payload_sha256"):
            load_trace(path)

    def test_meta_missing_required_keys_listed(self, tmp_path):
        t = make_trace([0])
        meta = {"version": FORMAT_VERSION}
        path = write_raw_npz(tmp_path / "bad.npz", t.records, meta)
        with pytest.raises(TraceFormatError, match="name, info") as excinfo:
            load_trace(path)
        assert str(path) in str(excinfo.value)

    def test_meta_not_an_object_rejected(self, tmp_path):
        t = make_trace([0])
        path = tmp_path / "bad.npz"
        with open(path, "wb") as f:
            np.savez(
                f,
                records=t.records,
                meta=np.frombuffer(json.dumps([1, 2]).encode(), dtype=np.uint8),
            )
        with pytest.raises(TraceFormatError, match="expected an object"):
            load_trace(path)
