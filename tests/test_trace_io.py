"""Round-trip and error-path tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.io import FORMAT_VERSION, load_trace, save_trace

from conftest import make_trace


class TestRoundTrip:
    def test_records_survive(self, tmp_path):
        t = make_trace([0, 64, 128], pcs=[1, 2, 3], kinds=[0, 1, 0], gaps=[1, 2, 3])
        path = save_trace(t, tmp_path / "t")
        loaded = load_trace(path)
        assert np.array_equal(loaded.records, t.records)

    def test_name_and_info_survive(self, tmp_path):
        t = make_trace([0], name="gap.bfs")
        t.info["kernel"] = "bfs"
        loaded = load_trace(save_trace(t, tmp_path / "t"))
        assert loaded.name == "gap.bfs"
        assert loaded.info["kernel"] == "bfs"

    def test_npz_suffix_added(self, tmp_path):
        path = save_trace(make_trace([0]), tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_empty_trace_roundtrip(self, tmp_path):
        t = make_trace([])
        loaded = load_trace(save_trace(t, tmp_path / "e"))
        assert len(loaded) == 0


class TestErrorPaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path / "nope.npz")

    def test_not_a_trace_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(TraceFormatError, match="not a repro trace"):
            load_trace(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_version_is_checked(self, tmp_path):
        import json

        t = make_trace([0])
        meta = {"version": FORMAT_VERSION + 1, "name": "x", "info": {}}
        path = tmp_path / "future.npz"
        with open(path, "wb") as f:
            np.savez(
                f,
                records=t.records,
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            )
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)
