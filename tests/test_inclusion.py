"""Tests for the inclusive-hierarchy mode (back-invalidation)."""

import pytest

from repro.core.simulator import build_hierarchy, simulate
from repro.trace import synthetic
from repro.trace.record import AccessKind

from test_hierarchy import tiny_config

LOAD = AccessKind.LOAD
STORE = AccessKind.STORE


def fill_llc_set_with_conflicts(h, set_index=0, count=None):
    """Access enough blocks mapping to one LLC set to force evictions."""
    count = count or (h.llc.num_ways + 2)
    blocks = [set_index + h.llc.num_sets * i for i in range(count)]
    for i, b in enumerate(blocks):
        h.access(b * 64, 0, LOAD, i * 1000)
    return blocks


class TestBackInvalidation:
    def test_llc_eviction_removes_upper_copies(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        blocks = fill_llc_set_with_conflicts(h)
        evicted = [b for b in blocks if not h.llc.contains(b)]
        assert evicted, "the set must have overflowed"
        for b in evicted:
            assert not h.l1d.contains(b)
            assert not h.l2.contains(b)

    @staticmethod
    def _evict_block_zero_from_llc(h):
        """Fill LLC set 0 while keeping block 0 hot in the L1D.

        Touching block 0 after every conflicting fill keeps it MRU in the
        L1D (hits there never reach the LLC), so once the LLC set
        overflows, block 0 is LLC-evicted while still upper-resident —
        the exact situation where inclusion modes differ.
        """
        cycle = 0
        h.access(0, 0, LOAD, cycle)
        for i in range(1, h.llc.num_ways + 2):
            cycle += 1000
            h.access(h.llc.num_sets * i * 64, 0, LOAD, cycle)
            h.access(0, 0, LOAD, cycle + 1)

    def test_nine_mode_keeps_upper_copies(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=False)
        self._evict_block_zero_from_llc(h)
        assert not h.llc.contains(0)
        assert h.l1d.contains(0)  # NINE: upper copy survives

    def test_inclusive_mode_forces_retouch_misses(self):
        """In NINE the re-touches of block 0 all hit the L1D; inclusive
        back-invalidation forces some of them to miss and refetch."""
        nine = build_hierarchy(tiny_config(), "lru", inclusive=False)
        self._evict_block_zero_from_llc(nine)
        incl = build_hierarchy(tiny_config(), "lru", inclusive=True)
        self._evict_block_zero_from_llc(incl)
        assert incl.stats.back_invalidations > 0
        assert incl.l1d.stats.demand_misses > nine.l1d.stats.demand_misses

    def test_back_invalidation_counter(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        fill_llc_set_with_conflicts(h)
        assert h.stats.back_invalidations > 0

    def test_dirty_upper_copy_flushed_to_dram(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        # Dirty a block in L1D, then evict it from the LLC via conflicts.
        h.access(0, 0, STORE, 0)
        writes_before = h.dram.stats.writes
        for i in range(1, h.llc.num_ways + 2):
            h.access(h.llc.num_sets * i * 64, 0, LOAD, i * 1000)
        if not h.llc.contains(0):
            assert h.dram.stats.writes > writes_before

    def test_inclusive_never_hits_above_without_llc_copy(self):
        """The inclusion invariant: upper-level content is a subset of
        the LLC's (checked after every access of a random workload)."""
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        trace = synthetic.zipf_reuse(3000, num_blocks=300, seed=5)
        for i, addr in enumerate(trace.addrs.tolist()):
            h.access(addr, 0, LOAD, i * 100)
        for cache in (h.l1d, h.l2):
            for block in cache.resident_blocks():
                assert h.llc.contains(block), (
                    f"{cache.name} holds block {block:#x} not in the LLC"
                )

    def test_simulate_with_inclusive_hierarchy(self):
        cfg = tiny_config()
        trace = synthetic.zipf_reuse(5000, num_blocks=400, seed=6)
        h = build_hierarchy(cfg, "lru", inclusive=True)
        result = simulate(trace, config=cfg, hierarchy=h)
        assert result.instructions > 0

    def test_inclusive_hit_rate_not_higher_than_nine(self):
        """Back-invalidation can only reduce upper-level hit rates."""
        cfg = tiny_config()
        trace = synthetic.zipf_reuse(8000, num_blocks=500, seed=7)
        nine = simulate(trace, config=cfg, hierarchy=build_hierarchy(cfg, "lru"))
        incl = simulate(
            trace, config=cfg, hierarchy=build_hierarchy(cfg, "lru", inclusive=True)
        )
        assert (
            incl.levels["L1D"].demand_hit_rate
            <= nine.levels["L1D"].demand_hit_rate + 0.02
        )
