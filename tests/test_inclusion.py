"""Tests for the inclusive-hierarchy mode (back-invalidation)."""

import pytest

from repro.core.simulator import build_hierarchy, simulate
from repro.trace import synthetic
from repro.trace.record import AccessKind

from test_hierarchy import tiny_config

LOAD = AccessKind.LOAD
STORE = AccessKind.STORE


def fill_llc_set_with_conflicts(h, set_index=0, count=None):
    """Access enough blocks mapping to one LLC set to force evictions."""
    count = count or (h.llc.num_ways + 2)
    blocks = [set_index + h.llc.num_sets * i for i in range(count)]
    for i, b in enumerate(blocks):
        h.access(b * 64, 0, LOAD, i * 1000)
    return blocks


class TestBackInvalidation:
    def test_llc_eviction_removes_upper_copies(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        blocks = fill_llc_set_with_conflicts(h)
        evicted = [b for b in blocks if not h.llc.contains(b)]
        assert evicted, "the set must have overflowed"
        for b in evicted:
            assert not h.l1d.contains(b)
            assert not h.l2.contains(b)

    @staticmethod
    def _evict_block_zero_from_llc(h):
        """Fill LLC set 0 while keeping block 0 hot in the L1D.

        Touching block 0 after every conflicting fill keeps it MRU in the
        L1D (hits there never reach the LLC), so once the LLC set
        overflows, block 0 is LLC-evicted while still upper-resident —
        the exact situation where inclusion modes differ.
        """
        cycle = 0
        h.access(0, 0, LOAD, cycle)
        for i in range(1, h.llc.num_ways + 2):
            cycle += 1000
            h.access(h.llc.num_sets * i * 64, 0, LOAD, cycle)
            h.access(0, 0, LOAD, cycle + 1)

    def test_nine_mode_keeps_upper_copies(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=False)
        self._evict_block_zero_from_llc(h)
        assert not h.llc.contains(0)
        assert h.l1d.contains(0)  # NINE: upper copy survives

    def test_inclusive_mode_forces_retouch_misses(self):
        """In NINE the re-touches of block 0 all hit the L1D; inclusive
        back-invalidation forces some of them to miss and refetch."""
        nine = build_hierarchy(tiny_config(), "lru", inclusive=False)
        self._evict_block_zero_from_llc(nine)
        incl = build_hierarchy(tiny_config(), "lru", inclusive=True)
        self._evict_block_zero_from_llc(incl)
        assert incl.stats.back_invalidations > 0
        assert incl.l1d.stats.demand_misses > nine.l1d.stats.demand_misses

    def test_back_invalidation_counter(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        fill_llc_set_with_conflicts(h)
        assert h.stats.back_invalidations > 0

    def test_dirty_upper_copy_flushed_to_dram(self):
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        # Dirty a block in L1D, then evict it from the LLC via conflicts.
        h.access(0, 0, STORE, 0)
        writes_before = h.dram.stats.writes
        for i in range(1, h.llc.num_ways + 2):
            h.access(h.llc.num_sets * i * 64, 0, LOAD, i * 1000)
        if not h.llc.contains(0):
            assert h.dram.stats.writes > writes_before

    def test_inclusive_never_hits_above_without_llc_copy(self):
        """The inclusion invariant: upper-level content is a subset of
        the LLC's (checked after every access of a random workload)."""
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        trace = synthetic.zipf_reuse(3000, num_blocks=300, seed=5)
        for i, addr in enumerate(trace.addrs.tolist()):
            h.access(addr, 0, LOAD, i * 100)
        for cache in (h.l1d, h.l2):
            for block in cache.resident_blocks():
                assert h.llc.contains(block), (
                    f"{cache.name} holds block {block:#x} not in the LLC"
                )

    def test_simulate_with_inclusive_hierarchy(self):
        cfg = tiny_config()
        trace = synthetic.zipf_reuse(5000, num_blocks=400, seed=6)
        h = build_hierarchy(cfg, "lru", inclusive=True)
        result = simulate(trace, config=cfg, hierarchy=h)
        assert result.instructions > 0

    def test_inclusive_hit_rate_not_higher_than_nine(self):
        """Back-invalidation can only reduce upper-level hit rates."""
        cfg = tiny_config()
        trace = synthetic.zipf_reuse(8000, num_blocks=500, seed=7)
        nine = simulate(trace, config=cfg, hierarchy=build_hierarchy(cfg, "lru"))
        incl = simulate(
            trace, config=cfg, hierarchy=build_hierarchy(cfg, "lru", inclusive=True)
        )
        assert (
            incl.levels["L1D"].demand_hit_rate
            <= nine.levels["L1D"].demand_hit_rate + 0.02
        )


class TestSingleWritebackPerEviction:
    """An LLC eviction whose victim is dirty *both* in the LLC and in an
    upper level must write DRAM exactly once (the back-snooped upper copy
    is the freshest data). Regression test for the double-write bug where
    ``_back_invalidate`` and ``_fill_llc`` each issued ``dram.write``."""

    @staticmethod
    def _instrument_writes(h):
        written = []
        real_write = h.dram.write

        def recording_write(addr, cycle):
            written.append(addr)
            real_write(addr, cycle)

        h.dram.write = recording_write
        return written

    def test_doubly_dirty_victim_written_once(self):
        """STORE block 0 (dirty in L1D *and*, via the STORE-kind fill, in
        the LLC), keep it hot in the L1D, then overflow LLC set 0 until
        block 0 is evicted: that one eviction event must write block 0 to
        DRAM once — the bug wrote it twice (back-snoop flush + victim
        writeback)."""
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        written = self._instrument_writes(h)
        h.access(0, 0, STORE, 0)
        for i in range(1, h.llc.num_ways + 2):
            cycle = i * 1000
            h.access(h.llc.num_sets * i * 64, 0, LOAD, cycle)
            if 0 in written:
                break  # block 0 just got LLC-evicted while dirty above
            h.access(0, 0, STORE, cycle + 1)  # L1D hit: stays dirty above
        assert written.count(0) == 1

    def test_clean_upper_dirty_llc_victim_still_written(self):
        """Sanity: with no dirty upper copy, the dirty LLC victim itself
        must still be written back exactly once."""
        h = build_hierarchy(tiny_config(), "lru", inclusive=True)
        written = self._instrument_writes(h)
        h.access(0, 0, STORE, 0)
        # Evict block 0 from L1D and L2 first (clean upper levels), by
        # conflicting in their sets without touching LLC set 0's ways...
        # simpler: invalidate the upper copies directly.
        h.l1d.invalidate(0)
        h.l2.invalidate(0)
        for i in range(1, h.llc.num_ways + 2):
            h.access(h.llc.num_sets * i * 64, 0, LOAD, i * 1000)
        assert not h.llc.contains(0)
        assert written.count(0) == 1
