"""Batched multi-cell engine: bit-identity, sweep integration, fallback.

The batched engine (repro.mem.batch) decodes a trace once and replays
every eligible policy against one shared plan; these tests hold it to
the same standard as the single-run fast path — bit-identical canonical
JSON against the reference — and cover the sweep-engine integration the
per-cell machinery must preserve: cache hits/misses, ineligible-cell
fallback, trace-dedup submission, and resilience (a poisoned batched
cell must not take the rest of the matrix down).
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from conftest import make_trace
from repro.core.config import small_test_machine
from repro.core.simulator import build_hierarchy, simulate
from repro.errors import ConfigurationError, SimulationError
from repro.harness.engine import (
    SweepEngine,
    _install_worker_traces,
    _simulate_cell_by_name,
    _simulate_group,
)
from repro.mem.batch import BatchSimulator, batch_eligible, simulate_batched
from repro.resilience import RetryPolicy
from repro.telemetry import TelemetryConfig
from repro.trace import synthetic
from repro.trace.record import AccessKind


def canonical(result) -> str:
    return json.dumps(result.to_json_dict(), sort_keys=True)


def canon_matrix(outcome) -> dict:
    return {
        (workload, policy): canonical(result)
        for workload, row in outcome.matrix.results.items()
        for policy, result in row.items()
    }


POLICIES = ["lru", "ship", "drrip"]


@pytest.fixture(scope="module")
def machine():
    return small_test_machine()


@pytest.fixture(scope="module")
def traces():
    return {
        "zipf": synthetic.zipf_reuse(2_500, num_blocks=400, seed=3),
        "stream": synthetic.strided(2_500, stride=64, elements=120),
    }


@pytest.fixture(scope="module")
def fast_baseline(machine, traces):
    """The per-cell fast engine's canonical results (telemetry off)."""
    return canon_matrix(
        SweepEngine().run(traces, POLICIES, config=machine)
    )


class TestSimulateBatched:
    def test_bit_identical_to_single_run(self, machine, traces):
        trace = traces["zipf"]
        batched = simulate_batched(trace, POLICIES, config=machine)
        for policy in POLICIES:
            single = simulate(trace, config=machine, llc_policy=policy)
            assert canonical(batched[policy]) == canonical(single), policy

    def test_telemetry_armed_bit_identical(self, machine, traces):
        trace = traces["stream"]
        tele = TelemetryConfig(interval_instructions=600)
        batched = simulate_batched(
            trace, ["lru", "ship"], config=machine, telemetry=tele
        )
        for policy in ("lru", "ship"):
            single = simulate(
                trace, config=machine, llc_policy=policy, telemetry=tele
            )
            assert canonical(batched[policy]) == canonical(single), policy

    def test_ineligible_trace_falls_back(self, machine):
        # WRITEBACK records are outside the modeled kinds; the batched
        # wrapper must route the cell through simulate() instead.
        trace = make_trace([0, 64, 128, 192], kinds=int(AccessKind.WRITEBACK))
        assert not batch_eligible(build_hierarchy(machine, "lru"), trace)
        batched = simulate_batched(trace, ["lru"], config=machine)
        single = simulate(trace, config=machine, llc_policy="lru")
        assert canonical(batched["lru"]) == canonical(single)

    def test_eligibility_mirrors_fastpath_guards(self, machine, traces):
        from repro.mem.prefetcher import NextLinePrefetcher
        from repro.policies.registry import make_policy

        zipf = traces["zipf"]
        assert batch_eligible(build_hierarchy(machine, "hawkeye"), zipf)
        with_pf = build_hierarchy(
            machine, "lru", l2_prefetcher=NextLinePrefetcher()
        )
        assert not batch_eligible(with_pf, zipf)
        inclusive = build_hierarchy(machine, "lru", inclusive=True)
        assert not batch_eligible(inclusive, zipf)
        swapped = build_hierarchy(machine, "lru")
        swapped.l1d.policy = make_policy("fifo")
        assert not batch_eligible(swapped, zipf)


class TestBatchedSweepBitIdentity:
    def test_serial_batched_equals_fast(self, machine, traces, fast_baseline):
        outcome = SweepEngine().run(
            traces, POLICIES, config=machine, engine="batched"
        )
        assert canon_matrix(outcome) == fast_baseline
        assert outcome.stats.simulated == len(traces) * len(POLICIES)

    def test_parallel_batched_equals_fast(self, machine, traces, fast_baseline):
        outcome = SweepEngine(jobs=2).run(
            traces, POLICIES, config=machine, engine="batched"
        )
        assert canon_matrix(outcome) == fast_baseline

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_telemetry_armed_batched_equals_fast(self, machine, traces, jobs):
        tele = TelemetryConfig(interval_instructions=600)
        fast = canon_matrix(
            SweepEngine().run(traces, POLICIES, config=machine, telemetry=tele)
        )
        batched = canon_matrix(
            SweepEngine(jobs=jobs).run(
                traces, POLICIES, config=machine, telemetry=tele,
                engine="batched",
            )
        )
        assert batched == fast

    def test_resilient_batched_equals_fast(self, machine, traces, fast_baseline):
        outcome = SweepEngine(jobs=2).run(
            traces, POLICIES, config=machine, engine="batched",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                              backoff_max=0.05),
        )
        assert canon_matrix(outcome) == fast_baseline
        assert not outcome.failure_report.cells  # nothing was absorbed

    def test_invalid_engine_rejected(self, machine, traces):
        with pytest.raises(ConfigurationError, match="sweep engine"):
            SweepEngine().run(traces, ["lru"], config=machine, engine="warp")


class TestCacheInteraction:
    def test_batched_populates_the_shared_cache(
        self, tmp_path, machine, traces, fast_baseline
    ):
        # Engine choice is not part of the cell key: a batched sweep's
        # entries must serve a later fast-engine sweep verbatim.
        cells = len(traces) * len(POLICIES)
        first = SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, POLICIES, config=machine, engine="batched"
        )
        assert first.stats.simulated == cells and first.stats.hits == 0
        second = SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, POLICIES, config=machine, engine="fast"
        )
        assert second.stats.hits == cells and second.stats.simulated == 0
        assert canon_matrix(second) == fast_baseline

    def test_cached_cells_never_reach_the_batch_path(
        self, tmp_path, machine, traces, monkeypatch
    ):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, POLICIES, config=machine, engine="batched")

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("batched path ran despite a full cache")

        monkeypatch.setattr(BatchSimulator, "__init__", boom)
        outcome = SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, POLICIES, config=machine, engine="batched"
        )
        assert outcome.stats.hits == len(traces) * len(POLICIES)

    def test_partial_cache_batches_only_the_pending_cells(
        self, tmp_path, machine, traces, fast_baseline
    ):
        warm = SweepEngine(cache_dir=tmp_path, jobs=1)
        warm.run({"zipf": traces["zipf"]}, POLICIES, config=machine)
        outcome = SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, POLICIES, config=machine, engine="batched"
        )
        assert outcome.stats.hits == len(POLICIES)
        assert outcome.stats.simulated == len(POLICIES)
        assert canon_matrix(outcome) == fast_baseline


class TestIneligibleFallback:
    def test_writeback_trace_completes_per_cell(self, machine, traces):
        mixed = dict(traces)
        mixed["wb"] = make_trace(
            [i * 64 for i in range(64)], kinds=int(AccessKind.WRITEBACK),
            name="wb",
        )
        batched = canon_matrix(
            SweepEngine().run(mixed, POLICIES, config=machine, engine="batched")
        )
        fast = canon_matrix(
            SweepEngine().run(mixed, POLICIES, config=machine)
        )
        assert batched == fast
        assert {w for w, _ in batched} == {"zipf", "stream", "wb"}

    def test_plan_failure_falls_back_per_cell(
        self, machine, traces, fast_baseline, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("plan construction exploded")

        monkeypatch.setattr(BatchSimulator, "__init__", boom)
        outcome = SweepEngine().run(
            traces, POLICIES, config=machine, engine="batched"
        )
        assert canon_matrix(outcome) == fast_baseline

    def test_group_worker_reports_incomplete_cells(self, machine, traces):
        original = BatchSimulator.run_cell

        def flaky(self, policy, hierarchy):
            if policy == "ship":
                raise RuntimeError("cell exploded mid-batch")
            return original(self, policy, hierarchy)

        BatchSimulator.run_cell = flaky
        try:
            _, outcomes = _simulate_group(
                "zipf", POLICIES, traces["zipf"], machine, 0.2
            )
        finally:
            BatchSimulator.run_cell = original
        by_policy = {policy: completed for policy, completed, _ in outcomes}
        assert by_policy == {"lru": True, "ship": False, "drrip": True}


class TestResilienceIntegration:
    def test_poisoned_batched_cell_rest_recovers(
        self, machine, traces, fast_baseline, monkeypatch
    ):
        """One cell fails in the batch AND per-cell with MemoryError: it
        must be isolated as poison while every other cell — including the
        other policies of the same trace — completes bit-identically."""
        import repro.harness.engine as engine_module

        original_run_cell = BatchSimulator.run_cell

        def poisoned_run_cell(self, policy, hierarchy):
            if policy == "ship" and self.trace.name == traces["zipf"].name:
                raise MemoryError("poisoned cell")
            return original_run_cell(self, policy, hierarchy)

        original_cell = engine_module._simulate_cell

        def poisoned_cell(workload, policy, trace, *args, **kwargs):
            if workload == "zipf" and policy == "ship":
                raise MemoryError("poisoned cell")
            return original_cell(workload, policy, trace, *args, **kwargs)

        monkeypatch.setattr(BatchSimulator, "run_cell", poisoned_run_cell)
        monkeypatch.setattr(engine_module, "_simulate_cell", poisoned_cell)

        outcome = SweepEngine().run(
            traces, POLICIES, config=machine, engine="batched",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                              backoff_max=0.05),
            isolate_failures=True,
        )
        assert set(outcome.errors) == {("zipf", "ship")}
        assert outcome.errors[("zipf", "ship")].classification == "poison"
        survived = canon_matrix(outcome)
        expected = {
            cell: payload for cell, payload in fast_baseline.items()
            if cell != ("zipf", "ship")
        }
        assert survived == expected
        report = outcome.failure_report
        assert len(report.poisoned) == 1


class TestTraceDedup:
    """The standalone fix: traces cross the pool boundary once per
    worker (via the initializer registry), never per submitted cell."""

    def _recording_pool(self, monkeypatch):
        import repro.harness.engine as engine_module

        captured = {"initargs": [], "submits": []}

        class RecordingPool(ProcessPoolExecutor):
            def __init__(self, *args, **kwargs):
                captured["initargs"].append(kwargs.get("initargs"))
                super().__init__(*args, **kwargs)

            def submit(self, fn, /, *args, **kwargs):
                captured["submits"].append((fn.__name__, args))
                return super().submit(fn, *args, **kwargs)

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", RecordingPool)
        return captured

    def test_parallel_submits_names_not_traces(
        self, machine, traces, monkeypatch
    ):
        from repro.trace.trace import Trace

        captured = self._recording_pool(monkeypatch)
        SweepEngine(jobs=2).run(traces, POLICIES, config=machine)
        assert len(captured["submits"]) == len(traces) * len(POLICIES)
        for name, args in captured["submits"]:
            assert name == "_simulate_cell_by_name"
            assert not any(isinstance(a, Trace) for a in args)
        (initargs,) = captured["initargs"]
        (registry,) = initargs
        assert set(registry) == set(traces)

    def test_batched_groups_submit_names_not_traces(
        self, machine, traces, monkeypatch
    ):
        from repro.trace.trace import Trace

        captured = self._recording_pool(monkeypatch)
        SweepEngine(jobs=2).run(
            traces, POLICIES, config=machine, engine="batched"
        )
        group_submits = [
            (name, args) for name, args in captured["submits"]
            if name == "_simulate_group_by_name"
        ]
        assert len(group_submits) == len(traces)
        for _, args in group_submits:
            assert not any(isinstance(a, Trace) for a in args)

    def test_worker_registry_resolves_and_rejects(self, machine, traces):
        _install_worker_traces(dict(traces))
        try:
            workload, policy, result = _simulate_cell_by_name(
                "zipf", "lru", machine, 0.2, False
            )
            assert (workload, policy) == ("zipf", "lru")
            direct = simulate(traces["zipf"], config=machine, llc_policy="lru")
            assert canonical(result) == canonical(direct)
            with pytest.raises(SimulationError, match="no registered trace"):
                _simulate_cell_by_name("missing", "lru", machine, 0.2, False)
        finally:
            _install_worker_traces({})


class TestEquivalenceHarness:
    def test_verify_fastpath_batched_engine(self, machine):
        from repro.harness.equivalence import verify_fastpath

        traces = {"zipf": synthetic.zipf_reuse(2_000, num_blocks=300, seed=5)}
        report = verify_fastpath(
            config=machine, policies=["lru", "ship"], traces=traces,
            engine="batched",
        )
        assert report.passed
        assert report.fast_coverage == len(report.cases) == 4

    def test_invalid_candidate_engine_rejected(self, machine):
        from repro.harness.equivalence import verify_fastpath

        with pytest.raises(ValueError, match="candidate engine"):
            verify_fastpath(config=machine, engine="warp")
