"""Tests for trace transformation utilities."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.filters import (
    downsample,
    filter_by_address_range,
    filter_by_kind,
    filter_by_pc,
    filter_trace,
    rebase_addresses,
    remap_pcs,
    split_by_pc,
)
from repro.trace.record import AccessKind

from conftest import make_trace


class TestFilterTrace:
    def test_keeps_masked_accesses(self):
        t = make_trace([0, 64, 128, 192])
        out = filter_trace(t, np.array([True, False, True, False]))
        assert out.addrs.tolist() == [0, 128]

    def test_gaps_fold_forward(self):
        t = make_trace([0, 64, 128], gaps=[2, 3, 4])
        out = filter_trace(t, np.array([True, False, True]))
        # dropped access's 3 instructions fold into the next kept one
        assert out.gaps.tolist() == [2, 7]
        assert out.num_instructions == 9

    def test_leading_drop_folds_into_first_kept(self):
        t = make_trace([0, 64], gaps=[5, 1])
        out = filter_trace(t, np.array([False, True]))
        assert out.gaps.tolist() == [6]

    def test_trailing_drop_discarded(self):
        t = make_trace([0, 64], gaps=[1, 9])
        out = filter_trace(t, np.array([True, False]))
        assert out.num_instructions == 1

    def test_wrong_mask_length(self):
        with pytest.raises(TraceError, match="mask length"):
            filter_trace(make_trace([0]), np.array([True, False]))

    def test_empty_result_rejected(self):
        with pytest.raises(TraceError, match="every access"):
            filter_trace(make_trace([0]), np.array([False]))

    def test_name_suffix(self):
        out = filter_trace(make_trace([0], name="t"), np.array([True]))
        assert "filtered" in out.name


class TestSelectors:
    def test_filter_by_pc(self):
        t = make_trace([0, 64, 128], pcs=[1, 2, 1])
        out = filter_by_pc(t, [1])
        assert out.addrs.tolist() == [0, 128]
        assert set(out.pcs.tolist()) == {1}

    def test_filter_by_kind(self):
        t = make_trace([0, 64], kinds=[0, 1])
        out = filter_by_kind(t, [AccessKind.STORE])
        assert out.addrs.tolist() == [64]

    def test_filter_by_address_range(self):
        t = make_trace([0, 100, 200])
        out = filter_by_address_range(t, 50, 150)
        assert out.addrs.tolist() == [100]

    def test_empty_range_rejected(self):
        with pytest.raises(TraceError):
            filter_by_address_range(make_trace([0]), 10, 10)


class TestDownsample:
    def test_every_second(self):
        t = make_trace([0, 64, 128, 192], gaps=[1, 1, 1, 1])
        out = downsample(t, 2)
        assert out.addrs.tolist() == [0, 128]
        assert out.gaps.tolist() == [1, 2]

    def test_step_one_is_identity(self):
        t = make_trace([0, 64])
        out = downsample(t, 1)
        assert np.array_equal(out.records, t.records)

    def test_invalid_step(self):
        with pytest.raises(TraceError):
            downsample(make_trace([0]), 0)


class TestAddressTransforms:
    def test_rebase(self):
        t = make_trace([0, 64])
        out = rebase_addresses(t, 0x1000)
        assert out.addrs.tolist() == [0x1000, 0x1040]

    def test_rebase_preserves_everything_else(self):
        t = make_trace([0], pcs=[7], gaps=[3])
        out = rebase_addresses(t, 64)
        assert out.pcs.tolist() == [7]
        assert out.gaps.tolist() == [3]

    def test_remap_pcs(self):
        t = make_trace([0, 64], pcs=[10, 20])
        out = remap_pcs(t, lambda pc: pc * 2)
        assert out.pcs.tolist() == [20, 40]

    def test_remap_preserves_addresses(self):
        t = make_trace([0, 64], pcs=[10, 20])
        out = remap_pcs(t, lambda pc: 0)
        assert out.addrs.tolist() == [0, 64]


class TestSplitByPC:
    def test_partition_is_complete(self):
        t = make_trace([0, 64, 128, 192], pcs=[1, 2, 1, 2])
        parts = split_by_pc(t)
        assert set(parts) == {1, 2}
        total = sum(len(p) for p in parts.values())
        assert total == len(t)

    def test_instruction_counts_preserved_modulo_tail(self):
        t = make_trace([0, 64, 128], pcs=[1, 2, 1], gaps=[2, 2, 2])
        parts = split_by_pc(t)
        # pc=1 keeps indices 0, 2: gap folding gives 2 + 4 = 6.
        assert parts[1].num_instructions == 6
