"""Unit tests for trace records and the structured dtype."""

import numpy as np
import pytest

from repro.trace.record import TRACE_DTYPE, Access, AccessKind, make_records


class TestAccessKind:
    def test_values_match_champsim_order(self):
        assert AccessKind.LOAD == 0
        assert AccessKind.STORE == 1
        assert AccessKind.IFETCH == 2
        assert AccessKind.PREFETCH == 3
        assert AccessKind.WRITEBACK == 4

    def test_stores_are_writes(self):
        assert AccessKind.STORE.is_write
        assert AccessKind.WRITEBACK.is_write

    def test_loads_are_not_writes(self):
        assert not AccessKind.LOAD.is_write
        assert not AccessKind.IFETCH.is_write
        assert not AccessKind.PREFETCH.is_write


class TestTraceDtype:
    def test_field_names(self):
        assert TRACE_DTYPE.names == ("addr", "pc", "kind", "gap")

    def test_addr_is_64_bit(self):
        assert TRACE_DTYPE["addr"] == np.uint64

    def test_record_size_is_compact(self):
        # 8 + 8 + 1 + 4 = 21 bytes packed; numpy may pad, but the record
        # must stay well under 32 bytes for multi-million-access traces.
        assert TRACE_DTYPE.itemsize <= 32


class TestMakeRecords:
    def test_roundtrip_values(self):
        records = make_records(
            np.array([64, 128], dtype=np.uint64),
            np.array([1, 2], dtype=np.uint64),
            np.array([0, 1], dtype=np.uint8),
            np.array([1, 5], dtype=np.uint32),
        )
        assert records["addr"].tolist() == [64, 128]
        assert records["pc"].tolist() == [1, 2]
        assert records["kind"].tolist() == [0, 1]
        assert records["gap"].tolist() == [1, 5]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            make_records(
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.uint64),
                np.zeros(3, dtype=np.uint8),
                np.zeros(3, dtype=np.uint32),
            )

    def test_empty_is_fine(self):
        records = make_records(
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.uint32),
        )
        assert len(records) == 0
        assert records.dtype == TRACE_DTYPE


class TestAccess:
    def test_is_write_property(self):
        store = Access(64, 0, AccessKind.STORE, 1)
        load = Access(64, 0, AccessKind.LOAD, 1)
        assert store.is_write
        assert not load.is_write

    def test_namedtuple_fields(self):
        a = Access(64, 7, AccessKind.LOAD, 3)
        assert a.addr == 64
        assert a.pc == 7
        assert a.gap == 3
