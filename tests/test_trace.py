"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.record import TRACE_DTYPE, Access, AccessKind
from repro.trace.trace import Trace

from conftest import make_trace


class TestConstruction:
    def test_from_arrays(self):
        t = make_trace([0, 64, 128])
        assert len(t) == 3
        assert t.num_accesses == 3

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TraceError, match="TRACE_DTYPE"):
            Trace(np.zeros(4, dtype=np.uint64))

    def test_rejects_2d(self):
        with pytest.raises(TraceError, match="1-D"):
            Trace(np.zeros((2, 2), dtype=TRACE_DTYPE))

    def test_rejects_zero_gap(self):
        with pytest.raises(TraceError, match="gap >= 1"):
            make_trace([0, 64], gaps=[1, 0])

    def test_records_are_readonly(self):
        t = make_trace([0, 64])
        with pytest.raises(ValueError):
            t.records["addr"][0] = 1

    def test_empty_trace(self):
        t = Trace(np.empty(0, dtype=TRACE_DTYPE))
        assert len(t) == 0
        assert t.num_instructions == 0
        assert t.footprint_blocks() == 0


class TestDerived:
    def test_num_instructions_sums_gaps(self):
        t = make_trace([0, 64, 128], gaps=[2, 3, 4])
        assert t.num_instructions == 9

    def test_footprint_counts_distinct_blocks(self):
        # addresses 0 and 63 share a block; 64 is another block
        t = make_trace([0, 63, 64])
        assert t.footprint_blocks() == 2
        assert t.footprint_bytes() == 128

    def test_block_addrs(self):
        t = make_trace([0, 64, 130])
        assert t.block_addrs().tolist() == [0, 1, 2]

    def test_component_arrays(self):
        t = make_trace([0, 64], pcs=[5, 6], kinds=[0, 1], gaps=[1, 2])
        assert t.addrs.tolist() == [0, 64]
        assert t.pcs.tolist() == [5, 6]
        assert t.kinds.tolist() == [0, 1]
        assert t.gaps.tolist() == [1, 2]


class TestProtocol:
    def test_iteration_yields_access(self):
        t = make_trace([64], pcs=[9], kinds=[1], gaps=[2])
        (access,) = list(t)
        assert isinstance(access, Access)
        assert access.addr == 64
        assert access.pc == 9
        assert access.kind == AccessKind.STORE
        assert access.gap == 2

    def test_indexing_returns_access(self):
        t = make_trace([0, 64])
        assert t[1].addr == 64

    def test_slicing_returns_trace(self):
        t = make_trace([0, 64, 128], name="abc")
        s = t[1:]
        assert isinstance(s, Trace)
        assert len(s) == 2
        assert s.name == "abc"

    def test_head(self):
        t = make_trace([0, 64, 128])
        assert len(t.head(2)) == 2

    def test_repr_contains_name_and_counts(self):
        t = make_trace([0, 64], name="myname")
        assert "myname" in repr(t)
        assert "2" in repr(t)


class TestConcat:
    def test_concat_preserves_order_and_length(self):
        a = make_trace([0], name="a")
        b = make_trace([64, 128], name="b")
        c = Trace.concat([a, b])
        assert len(c) == 3
        assert c.addrs.tolist() == [0, 64, 128]

    def test_concat_name_and_parts(self):
        a = make_trace([0], name="a")
        b = make_trace([64], name="b")
        c = Trace.concat([a, b])
        assert c.name == "a+b"
        assert c.info["parts"] == ["a", "b"]

    def test_concat_explicit_name(self):
        c = Trace.concat([make_trace([0], name="a")], name="z")
        assert c.name == "z"

    def test_concat_empty_list_raises(self):
        with pytest.raises(TraceError, match="empty"):
            Trace.concat([])

    def test_concat_sums_instructions(self):
        a = make_trace([0], gaps=[3])
        b = make_trace([64], gaps=[4])
        assert Trace.concat([a, b]).num_instructions == 7
