"""Tests for the markdown report generator (with cheap fake experiments)."""

import pytest

from repro.harness.experiments import ExperimentReport
from repro.harness.report import generate_report


def fake_experiment() -> ExperimentReport:
    return ExperimentReport(
        experiment="Fake", headers=["suite", "metric"], rows=[["gap", 1.5]]
    )


def failing_experiment() -> ExperimentReport:
    raise RuntimeError("boom")


class TestGenerateReport:
    def test_writes_sections(self, tmp_path):
        path = generate_report(
            {"one": fake_experiment, "two": fake_experiment},
            tmp_path / "r.md",
        )
        text = path.read_text()
        assert "## one" in text and "## two" in text
        assert text.count("Fake") >= 2

    def test_tables_in_code_fences(self, tmp_path):
        text = generate_report(
            {"x": fake_experiment}, tmp_path / "r.md"
        ).read_text()
        assert "```" in text
        assert "metric" in text

    def test_charts_included_by_default(self, tmp_path):
        text = generate_report(
            {"x": fake_experiment}, tmp_path / "r.md"
        ).read_text()
        assert "█" in text

    def test_charts_can_be_disabled(self, tmp_path):
        text = generate_report(
            {"x": fake_experiment}, tmp_path / "r.md", charts=False
        ).read_text()
        assert "█" not in text

    def test_failures_isolated(self, tmp_path):
        text = generate_report(
            {"bad": failing_experiment, "good": fake_experiment},
            tmp_path / "r.md",
        ).read_text()
        assert "FAILED" in text and "boom" in text
        assert "## good" in text  # later experiments still ran

    def test_progress_callback(self, tmp_path):
        seen = []
        generate_report(
            {"a": fake_experiment}, tmp_path / "r.md",
            progress=seen.append,
        )
        assert seen == ["a"]

    def test_fig3_gets_baseline_chart(self, tmp_path):
        def fig3_like() -> ExperimentReport:
            return ExperimentReport(
                experiment="F3", headers=["suite", "srrip"],
                rows=[["gap", 1.01]],
            )

        text = generate_report(
            {"fig3": fig3_like}, tmp_path / "r.md"
        ).read_text()
        assert "|" in text  # baseline marker present


class TestCLIReport:
    def test_report_subcommand(self, tmp_path, monkeypatch, capsys):
        import repro.__main__ as cli

        monkeypatch.setitem(cli.EXPERIMENTS, "table1", fake_experiment)
        out = tmp_path / "out.md"
        rc = cli.main(["report", "--output", str(out),
                       "--experiments", "table1"])
        assert rc == 0
        assert out.exists()
        assert "Fake" in out.read_text()
