"""Behavioural tests for MPPPB (multiperspective perceptron with bypass)."""

from repro.mem.cache import Cache
from repro.policies.base import BYPASS, PolicyAccess
from repro.policies.mpppb import (
    SAMPLE_STRIDE,
    TABLE_SIZE,
    THETA_BYPASS,
    THETA_DEAD,
    MPPPBPolicy,
)
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD
WB = AccessKind.WRITEBACK


def make_policy(sets=16, ways=4) -> MPPPBPolicy:
    p = MPPPBPolicy()
    p.initialize(sets, ways)
    return p


class TestFeatures:
    def test_feature_indices_in_range(self):
        p = make_policy()
        p._pc_history.extend([0x1, 0x22, 0x333])
        for f in p._features(PolicyAccess(12345, 0xABCDEF, LOAD)):
            assert 0 <= f < TABLE_SIZE

    def test_feature_count_matches_tables(self):
        p = make_policy()
        features = p._features(PolicyAccess(1, 2, LOAD))
        assert len(features) == len(p._weights)


class TestTraining:
    def test_dead_training_raises_sum(self):
        p = make_policy()
        features = p._features(PolicyAccess(1, 0x40, LOAD))
        p._train(features, dead=True)
        assert p._sum(features) > 0

    def test_live_training_lowers_sum(self):
        p = make_policy()
        features = p._features(PolicyAccess(1, 0x40, LOAD))
        p._train(features, dead=False)
        assert p._sum(features) < 0

    def test_margin_stops_updates(self):
        p = make_policy()
        features = p._features(PolicyAccess(1, 0x40, LOAD))
        for _ in range(500):
            p._train(features, dead=True)
        total = p._sum(features)
        p._train(features, dead=True)
        assert p._sum(features) == total

    def test_hit_on_sampled_set_trains_live(self):
        p = make_policy()
        sampled_set = 0  # set 0 is always sampled (0 % SAMPLE_STRIDE == 0)
        assert sampled_set % SAMPLE_STRIDE == 0
        access = PolicyAccess(1, 0x40, LOAD)
        p.on_fill(sampled_set, 0, access)
        features = p._line_features[sampled_set][0]
        assert features is not None
        p.on_hit(sampled_set, 0, access)
        assert p._sum(features) < 0  # trained toward live

    def test_dead_eviction_on_sampled_set_trains_dead(self):
        p = make_policy()
        access = PolicyAccess(1, 0x40, LOAD)
        p.on_fill(0, 0, access)
        features = p._line_features[0][0]
        p.on_eviction(0, 0, 1)
        assert p._sum(features) > 0

    def test_unsampled_set_does_not_train(self):
        p = make_policy()
        unsampled = 1
        assert unsampled % SAMPLE_STRIDE != 0
        access = PolicyAccess(1, 0x40, LOAD)
        p.on_fill(unsampled, 0, access)
        p.on_eviction(unsampled, 0, 1)
        assert all(w == 0 for table in p._weights for w in table)


class TestBypass:
    def test_dead_on_arrival_bypasses(self):
        p = make_policy()
        access = PolicyAccess(1, 0x40, LOAD)
        features = p._features(access)
        while p._sum(features) < THETA_BYPASS:
            p._train(features, dead=True)
        assert p.find_victim(0, access, [5, 6, 7, 8]) == BYPASS
        assert p.stat_bypasses == 1

    def test_writebacks_never_bypass(self):
        p = make_policy()
        wb = PolicyAccess(1, 0, WB)
        for table in p._weights:
            for i in range(TABLE_SIZE):
                table[i] = 31  # everything looks dead
        assert p.find_victim(0, wb, [5, 6, 7, 8]) != BYPASS

    def test_bypass_rate_property(self):
        p = make_policy()
        assert p.bypass_rate == 0.0
        p.stat_fills = 3
        p.stat_bypasses = 1
        assert p.bypass_rate == 0.25


class TestVictimSelection:
    def test_prefers_predicted_dead_line(self):
        p = make_policy()
        access = PolicyAccess(99, 0x40, LOAD)
        p.on_fill(0, 0, access)
        p.on_fill(0, 1, access)
        p._line_dead[0][1] = True
        victim = p.find_victim(0, PolicyAccess(100, 0x50, LOAD), [1, 2, 3, 4])
        assert victim == 1

    def test_falls_back_to_lru(self):
        p = make_policy()
        for way in range(4):
            p.on_fill(0, way, PolicyAccess(way + 1, 0x40, LOAD))
        p.on_hit(0, 0, PolicyAccess(1, 0x40, LOAD))  # refresh way 0
        victim = p.find_victim(0, PolicyAccess(9, 0x50, LOAD), [1, 2, 3, 4])
        assert victim == 1  # oldest un-refreshed fill


class TestEndToEnd:
    def test_learns_to_bypass_scan(self):
        ways = 4
        cache = Cache("T", 16 * ways * 64, ways, MPPPBPolicy())
        policy = cache.policy
        scan_block = 100_000
        hits = 0
        for _ in range(600):
            for b in range(16):
                if cache.access(b, 0x100, LOAD).hit:
                    hits += 1
                else:
                    cache.fill(b, 0x100, LOAD)
            if not cache.access(scan_block, 0x900, LOAD).hit:
                cache.fill(scan_block, 0x900, LOAD)
            scan_block += 16
        assert policy.stat_bypasses > 0  # the scan PC trained to bypass
        assert hits > 0.8 * 16 * 599
