"""Tests for policy hardware-budget accounting (E11)."""

import pytest

from repro.core.config import cascade_lake
from repro.errors import UnknownPolicyError
from repro.policies.budget import HardwareBudget, budget_table, estimate_budget

SETS, WAYS = 2048, 11  # the paper's LLC geometry


class TestBudgetArithmetic:
    def test_total_bits(self):
        b = HardwareBudget("x", per_line_bits=2, table_bits=100,
                           num_sets=4, num_ways=2)
        assert b.line_storage_bits == 16
        assert b.total_bits == 116

    def test_total_kib(self):
        b = HardwareBudget("x", per_line_bits=0, table_bits=8 * 1024 * 8,
                           num_sets=1, num_ways=1)
        assert b.total_kib == pytest.approx(8.0)

    def test_overhead_vs(self):
        small = HardwareBudget("a", 1, 0, 4, 2)
        big = HardwareBudget("b", 2, 0, 4, 2)
        assert big.overhead_vs(small) == pytest.approx(2.0)


class TestPolicyBudgets:
    def test_srrip_is_two_bits_per_line(self):
        b = estimate_budget("srrip", SETS, WAYS)
        assert b.per_line_bits == 2.0
        assert b.table_bits == 0

    def test_ship_includes_shct(self):
        b = estimate_budget("ship", SETS, WAYS)
        assert b.table_bits == (1 << 14) * 2

    def test_hawkeye_includes_predictor_and_sampler(self):
        b = estimate_budget("hawkeye", SETS, WAYS)
        assert b.table_bits > (1 << 13) * 3  # predictor plus sampler

    def test_learned_policies_cost_more_than_rrip(self):
        """The paper's complexity claim, mechanically."""
        srrip = estimate_budget("srrip", SETS, WAYS)
        for learned in ("ship", "hawkeye", "glider", "mpppb"):
            budget = estimate_budget(learned, SETS, WAYS)
            assert budget.overhead_vs(srrip) > 5, learned

    def test_drrip_is_nearly_free_over_srrip(self):
        srrip = estimate_budget("srrip", SETS, WAYS)
        drrip = estimate_budget("drrip", SETS, WAYS)
        assert drrip.overhead_vs(srrip) < 1.01

    def test_paper_llc_geometry_budgets_are_reasonable(self):
        cfg = cascade_lake()
        for policy in ("lru", "srrip", "ship", "hawkeye", "glider", "mpppb"):
            b = estimate_budget(policy, cfg.llc.num_sets, cfg.llc.num_ways)
            # All within CRC2-style budgets: < 128 KiB of metadata.
            assert 0 < b.total_kib < 128, policy

    def test_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            estimate_budget("quantum", SETS, WAYS)

    def test_budget_table_order(self):
        rows = budget_table(["lru", "ship"], SETS, WAYS)
        assert [b.policy for b in rows] == ["lru", "ship"]


class TestExperimentE11:
    def test_report_shape(self):
        from repro.harness.experiments import experiment_hardware_budget

        report = experiment_hardware_budget()
        assert report.headers[0] == "policy"
        policies = [row[0] for row in report.rows]
        assert policies[0] == "lru"
        assert "hawkeye" in policies
        # x-LRU column: learned policies multiple times costlier.
        xlru = {row[0]: row[-1] for row in report.rows}
        assert xlru["hawkeye"] > 3 * xlru["drrip"]
