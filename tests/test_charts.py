"""Tests for the terminal bar-chart renderers."""

import pytest

from repro.analysis.charts import grouped_hbar_chart, hbar_chart


class TestHBar:
    def test_largest_value_gets_full_bar(self):
        out = hbar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10

    def test_proportionality(self):
        out = hbar_chart({"a": 1.0, "b": 2.0}, width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("█") == 5
        assert b_line.count("█") == 10

    def test_labels_and_values_present(self):
        out = hbar_chart({"srrip": 1.25}, value_format="{:.2f}")
        assert "srrip" in out and "1.25" in out

    def test_title(self):
        out = hbar_chart({"a": 1.0}, title="Figure 3")
        assert out.startswith("Figure 3\n--------")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hbar_chart({})

    def test_zero_values_render(self):
        out = hbar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out  # no crash on all-zero scale


class TestBaselineMode:
    def test_above_baseline_grows_right(self):
        out = hbar_chart({"fast": 1.2, "slow": 0.8}, baseline=1.0, width=20)
        fast_line, slow_line = out.splitlines()
        assert fast_line.index("|") < fast_line.index("█")
        assert slow_line.index("█") < slow_line.index("|")

    def test_at_baseline_has_no_bar(self):
        out = hbar_chart({"same": 1.0}, baseline=1.0)
        assert "█" not in out

    def test_bars_capped_at_half_width(self):
        out = hbar_chart({"huge": 100.0, "tiny": 1.01}, baseline=1.0, width=20)
        assert max(line.count("█") for line in out.splitlines()) <= 10


class TestGrouped:
    def test_groups_rendered_with_shared_scale(self):
        out = grouped_hbar_chart(
            {"bfs": {"L1D": 10.0, "LLC": 5.0}, "pr": {"L1D": 20.0, "LLC": 10.0}},
            width=10,
        )
        lines = [l for l in out.splitlines() if "█" in l]
        # pr.L1D is the global max -> 10 cells; bfs.L1D -> 5 cells.
        assert lines[0].count("█") == 5
        assert lines[2].count("█") == 10

    def test_group_headers(self):
        out = grouped_hbar_chart({"bfs": {"L1D": 1.0}})
        assert "bfs:" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_hbar_chart({})
