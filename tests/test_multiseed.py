"""Tests for multi-seed replication support."""

import pytest

from repro.harness.multiseed import replicate, replicated_speedup, summarize
from repro.trace import synthetic

from test_harness import tiny_config


class TestSummarize:
    def test_single_sample(self):
        s = summarize("x", [2.0])
        assert s.mean == 2.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == 2.0

    def test_mean_and_std(self):
        s = summarize("x", [1.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", [])

    def test_str_format(self):
        assert "±" in str(summarize("x", [1.0, 2.0]))


class TestReplicate:
    @staticmethod
    def build(seed: int):
        return synthetic.zipf_reuse(4000, num_blocks=500, seed=seed)

    def test_runs_all_seeds(self):
        run = replicate(self.build, "lru", seeds=(1, 2, 3), config=tiny_config())
        assert len(run.results) == 3
        assert run.policy == "lru"

    def test_summaries_cover_samples(self):
        run = replicate(self.build, "lru", seeds=(1, 2), config=tiny_config())
        assert run.ipc.minimum <= run.ipc.mean <= run.ipc.maximum
        assert len(run.llc_mpki.samples) == 2

    def test_different_seeds_vary(self):
        run = replicate(self.build, "lru", seeds=(1, 2, 3), config=tiny_config())
        assert run.llc_mpki.std > 0  # inputs genuinely resampled

    def test_same_seed_no_variance(self):
        run = replicate(self.build, "lru", seeds=(7, 7), config=tiny_config())
        assert run.llc_mpki.std == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(self.build, "lru", seeds=())


class TestReplicatedSpeedup:
    def test_thrash_speedup_stable_across_seeds(self):
        def build(seed: int):
            return synthetic.strided(
                4000, stride=64, elements=200, base=0x1000 * (seed + 1)
            )

        s = replicated_speedup(build, "brrip", seeds=(1, 2), config=tiny_config())
        assert s.mean > 1.0
        assert "brrip" in s.name
