"""Salt-closure pass tests: fixture trees, the live tree, and a tampered copy.

The acceptance test for the whole pass: adding an out-of-closure import
to a (temp) copy of the live simulator must fire the error, and on the
real tree the static closure must agree with what ``simulator_salt()``
actually hashes.
"""

import shutil
import textwrap
from pathlib import Path

import repro
from repro.lint import Severity, lint_paths, make_rule, salt_closure_report
from repro.lint.analyzer import build_context, package_root
from repro.lint.imports import build_import_graph, module_name_for


def make_tree(tmp_path, salt_literal, simulator_body="from ..mem import fastpath\n"):
    """A minimal package with the three entry points and one extra module."""
    root = tmp_path / "pkg"
    for sub in ("", "harness", "core", "mem", "policies"):
        d = root / sub if sub else root
        d.mkdir(parents=True, exist_ok=True)
        (d / "__init__.py").write_text("")
    (root / "harness" / "engine.py").write_text(
        f"SALT_SOURCE_PACKAGES = {salt_literal}\n"
    )
    (root / "core" / "simulator.py").write_text(simulator_body)
    (root / "mem" / "fastpath_helpers.py").write_text("")
    (root / "mem" / "fastpath.py").write_text("from . import fastpath_helpers\n")
    (root / "policies" / "registry.py").write_text("from . import basic\n")
    (root / "policies" / "basic.py").write_text("")
    (root / "util.py").write_text("")
    return root


def closure_findings(root):
    return lint_paths([root], [make_rule("salt-closure")])


class TestFixtureTrees:
    def test_uncovered_reachable_module_is_an_error(self, tmp_path):
        root = make_tree(
            tmp_path,
            '("core", "mem", "policies")',
            simulator_body="from ..mem import fastpath\nfrom ..util import helper\n",
        )
        findings = closure_findings(root)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "salt-closure"
        assert finding.severity == Severity.ERROR
        assert finding.path == str(root / "harness" / "engine.py")
        assert finding.line == 1  # the SALT_SOURCE_PACKAGES assignment
        assert "pkg.util" in finding.message

    def test_covered_tree_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            '("core", "mem", "policies", "util.py")',
            simulator_body="from ..mem import fastpath\nfrom ..util import helper\n",
        )
        assert closure_findings(root) == []

    def test_unreachable_module_needs_no_coverage(self, tmp_path):
        # util.py exists but nothing imports it: not part of the closure.
        root = make_tree(tmp_path, '("core", "mem", "policies")')
        assert closure_findings(root) == []

    def test_single_module_spec_covers_only_that_module(self, tmp_path):
        root = make_tree(
            tmp_path,
            '("core", "policies", "mem/fastpath.py")',
        )
        findings = closure_findings(root)
        # fastpath.py itself is covered; its helper module is not.
        assert len(findings) == 1
        assert "pkg.mem.fastpath_helpers" in findings[0].message

    def test_non_literal_salt_is_flagged_as_unverifiable(self, tmp_path):
        root = make_tree(tmp_path, "tuple(sorted(PACKAGES))")
        findings = closure_findings(root)
        assert len(findings) == 1
        assert "not a literal tuple" in findings[0].message

    def test_report_exposes_entries_and_reachable(self, tmp_path):
        root = make_tree(
            tmp_path,
            '("core", "mem", "policies")',
            simulator_body="from ..mem import fastpath\nfrom ..util import helper\n",
        )
        ctx, _ = build_context([root])
        report = salt_closure_report(ctx)
        assert report is not None
        assert sorted(report.entries) == [
            "pkg.core.simulator", "pkg.mem.fastpath", "pkg.policies.registry",
        ]
        assert "pkg.util" in report.reachable
        assert report.uncovered == ["pkg.util"]


class TestLiveTree:
    def test_live_closure_is_fully_covered(self):
        ctx, _ = build_context([package_root()])
        report = salt_closure_report(ctx)
        assert report is not None
        assert len(report.entries) == 5
        assert "repro.mem.batch" in report.entries
        assert "repro.sampling.executor" in report.entries
        assert report.uncovered == []

    def test_static_closure_agrees_with_simulator_salt(self):
        """Every module the lint pass proves reachable is actually hashed."""
        from repro.harness.engine import salt_source_files

        ctx, _ = build_context([package_root()])
        report = salt_closure_report(ctx)
        graph = build_import_graph(ctx)
        hashed = {str(p) for p in salt_source_files()}
        missing = sorted(
            name
            for name in report.reachable
            if str(Path(graph.modules[name].path).resolve()) not in hashed
        )
        assert missing == [], (
            "modules reachable from the simulation but not hashed into "
            f"simulator_salt(): {missing}"
        )


class TestTamperedCopy:
    def test_out_of_closure_import_on_simulator_copy_fires(self, tmp_path):
        """The acceptance criterion: tamper with a copy, the error fires."""
        src = Path(repro.__file__).resolve().parent
        copy = tmp_path / "repro"
        shutil.copytree(
            src, copy, ignore=shutil.ignore_patterns("__pycache__")
        )
        # The copy is clean as shipped...
        assert closure_findings(copy) == []
        # ...until the simulator grows a dependency outside the salt.
        (copy / "rogue.py").write_text("ROGUE_CONSTANT = 1\n")
        simulator = copy / "core" / "simulator.py"
        simulator.write_text(
            simulator.read_text()
            + "\nfrom ..rogue import ROGUE_CONSTANT  # planted\n"
        )
        findings = closure_findings(copy)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "salt-closure"
        assert finding.severity == Severity.ERROR
        assert finding.path.endswith("harness/engine.py")
        assert "repro.rogue" in finding.message


class TestModuleNames:
    def test_module_name_walks_init_chain(self, tmp_path):
        root = make_tree(tmp_path, "()")
        assert module_name_for(root / "core" / "simulator.py") == "pkg.core.simulator"
        assert module_name_for(root / "__init__.py") == "pkg"

    def test_orphan_file_has_no_module_name(self, tmp_path):
        orphan = tmp_path / "loose.py"
        orphan.write_text("")
        assert module_name_for(orphan) is None
