"""Fixture tests for the determinism pass (unordered-iter/dataflow/env).

Each rule gets a planted violation asserting the exact finding (rule id,
file, line) and a clean counterpart that must pass. Fixtures live under
``tmp_path/policies`` so the path-scoped rules treat them as simulation
code.
"""

import textwrap

from repro.lint import Severity, lint_paths, make_rule


def lint_source(tmp_path, source, rule, subdir="policies"):
    target = tmp_path / subdir
    target.mkdir(parents=True, exist_ok=True)
    path = target / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return path, lint_paths([path], [make_rule(rule)])


class TestUnorderedIter:
    def test_set_literal_iteration_flagged_with_location(self, tmp_path):
        path, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def find_victim(self, set_index, access, tags):
                    for way in {0, 1, 2}:
                        return way
                    return 0
        """, rule="determinism-unordered-iter")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "determinism-unordered-iter"
        assert finding.path == str(path)
        assert finding.line == 6
        assert finding.severity == Severity.ERROR

    def test_iterating_local_set_flagged(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def find_victim(self, set_index, access, tags):
                    candidates = set(tags)
                    for tag in candidates:
                        return tag
                    return 0
        """, rule="determinism-unordered-iter")
        assert [f.line for f in findings] == [7]

    def test_iterating_set_typed_attr_flagged(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def initialize(self, num_sets, num_ways):
                    self._seen = set()

                def on_fill(self, set_index, way, access):
                    total = sum(1 for block in self._seen)
        """, rule="determinism-unordered-iter")
        assert len(findings) == 1
        assert "_seen" in findings[0].message

    def test_sorted_iteration_is_clean(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def find_victim(self, set_index, access, tags):
                    for tag in sorted(set(tags)):
                        return tag
                    return 0
        """, rule="determinism-unordered-iter")
        assert findings == []

    def test_non_simulation_path_not_scoped(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            def helper():
                for x in {1, 2}:
                    return x
        """, rule="determinism-unordered-iter", subdir="analysis")
        assert findings == []


class TestDataflow:
    def test_id_flowing_into_state_flagged_with_location(self, tmp_path):
        path, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def on_fill(self, set_index, way, access):
                    token = id(access)
                    self._sig[set_index] = token
        """, rule="determinism-dataflow")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "determinism-dataflow"
        assert finding.path == str(path)
        assert finding.line == 7
        assert "self._sig" in finding.message

    def test_time_into_return_value_flagged(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            import time

            class P(ReplacementPolicy):
                name = "p"

                def find_victim(self, set_index, access, tags):
                    now = time.monotonic()
                    return int(now) % len(tags)
        """, rule="determinism-dataflow")
        assert [f.line for f in findings] == [9]
        assert "return value" in findings[0].message

    def test_tainted_table_index_flagged(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def on_hit(self, set_index, way, access):
                    slot = id(access) % 256
                    self._table[slot] += 1
        """, rule="determinism-dataflow")
        assert findings
        assert any("table index" in f.message for f in findings)

    def test_pure_arithmetic_is_clean(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def on_fill(self, set_index, way, access):
                    sig = (access.pc >> 4) % 1024
                    self._sig[set_index] = sig
        """, rule="determinism-dataflow")
        assert findings == []


class TestEnvRead:
    def test_environ_read_flagged_with_location(self, tmp_path):
        path, findings = lint_source(tmp_path, """
            import os

            class P(ReplacementPolicy):
                name = "p"

                def find_victim(self, set_index, access, tags):
                    if os.environ.get("REPRO_FAST"):
                        return 0
                    return 1
        """, rule="determinism-env")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "determinism-env"
        assert finding.path == str(path)
        assert finding.line == 8

    def test_getenv_flagged(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            from os import getenv

            def pick():
                return getenv("MODE", "ref")
        """, rule="determinism-env")
        assert len(findings) == 1

    def test_env_free_module_is_clean(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class P(ReplacementPolicy):
                name = "p"

                def find_victim(self, set_index, access, tags):
                    return 0
        """, rule="determinism-env")
        assert findings == []
