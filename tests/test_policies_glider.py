"""Behavioural tests for Glider (ISVM over PC history)."""

from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.glider import (
    ISVM_WEIGHTS,
    PCHR_LENGTH,
    THRESHOLD_AVERSE,
    THRESHOLD_CONFIDENT,
    WEIGHT_MAX,
    WEIGHT_MIN,
    GliderPolicy,
    isvm_index,
    weight_index,
)
from repro.policies.hawkeye import HAWKEYE_RRPV_MAX
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD
WB = AccessKind.WRITEBACK


def make_policy(sets=8, ways=4) -> GliderPolicy:
    p = GliderPolicy()
    p.initialize(sets, ways)
    return p


class TestHashing:
    def test_isvm_index_in_range(self):
        assert 0 <= isvm_index(0xFFFFFFFF) < 2048

    def test_weight_index_in_range(self):
        for pc in range(0, 4096, 8):
            assert 0 <= weight_index(pc) < ISVM_WEIGHTS


class TestFeatures:
    def test_pchr_is_bounded(self):
        p = make_policy()
        for i in range(20):
            p._push_history(i)
        assert len(p._pchr) == PCHR_LENGTH

    def test_features_use_history(self):
        p = make_policy()
        for _pc in [0x10, 0x20]:
            p._push_history(_pc)
        table, slots = p._features(0x40)
        assert table == isvm_index(0x40)
        assert set(slots) == {weight_index(0x10), weight_index(0x20)}


class TestTraining:
    def test_positive_training_raises_sum(self):
        p = make_policy()
        for _pc in [0x10, 0x20, 0x30]:
            p._push_history(_pc)
        features = p._features(0x40)
        before = p._sum(features)
        p._train(features, opt_hit=True)
        assert p._sum(features) > before

    def test_negative_training_lowers_sum(self):
        p = make_policy()
        for _pc in [0x10, 0x20]:
            p._push_history(_pc)
        features = p._features(0x40)
        p._train(features, opt_hit=False)
        assert p._sum(features) < 0

    def test_weights_saturate(self):
        p = make_policy()
        p._push_history(0x10)
        features = p._features(0x40)
        for _ in range(200):
            p._train(features, opt_hit=False)
        table, slots = features
        for s in slots:
            assert WEIGHT_MIN <= p._isvms[table][s] <= WEIGHT_MAX

    def test_margin_stops_training(self):
        """Once the sum passes the margin, positive updates stop."""
        p = make_policy()
        for _pc in [0x10, 0x20, 0x30, 0x40, 0x50]:
            p._push_history(_pc)
        features = p._features(0x60)
        for _ in range(500):
            p._train(features, opt_hit=True)
        total = p._sum(features)
        p._train(features, opt_hit=True)
        assert p._sum(features) == total  # no further movement


class TestInsertion:
    def test_negative_sum_inserts_averse(self):
        p = make_policy()
        p._push_history(0x10)
        features = p._features(0x40)
        for _ in range(10):
            p._train(features, opt_hit=False)
        p.on_fill(2, 0, PolicyAccess(1, 0x40, LOAD))
        assert p._rrpv[2][0] == HAWKEYE_RRPV_MAX
        assert p.stat_averse_fills == 1

    def test_confident_sum_inserts_zero(self):
        p = make_policy()
        p._push_history(0x10)
        features = p._features(0x40)
        table, slots = features
        for s in slots:
            p._isvms[table][s] = WEIGHT_MAX
        if p._sum(features) >= THRESHOLD_CONFIDENT:
            p.on_fill(2, 0, PolicyAccess(1, 0x40, LOAD))
            assert p._rrpv[2][0] == 0

    def test_low_confidence_friendly_inserts_aged(self):
        p = make_policy()
        p._push_history(0x10)
        # weights are all zero -> sum 0 -> friendly but not confident
        assert THRESHOLD_AVERSE <= 0 < THRESHOLD_CONFIDENT
        p.on_fill(2, 0, PolicyAccess(1, 0x40, LOAD))
        assert p._rrpv[2][0] == 2

    def test_writeback_inserts_averse(self):
        p = make_policy()
        p.on_fill(0, 0, PolicyAccess(1, 0, WB))
        assert p._rrpv[0][0] == HAWKEYE_RRPV_MAX


class TestEndToEnd:
    def test_learns_history_separable_workload(self):
        """Resident blocks (one PC context) vs scans (another context)."""
        ways = 4
        cache = Cache("T", 8 * ways * 64, ways, GliderPolicy())
        hits_late = 0
        scan_block = 10_000
        rounds = 500
        for r in range(rounds):
            for b in range(8):
                if cache.access(b, 0x100 + (b % 4) * 4, LOAD).hit:
                    if r > rounds // 2:
                        hits_late += 1
                else:
                    cache.fill(b, 0x100 + (b % 4) * 4, LOAD)
            for _ in range(ways):
                if not cache.access(scan_block, 0x900, LOAD).hit:
                    cache.fill(scan_block, 0x900, LOAD)
                scan_block += 8
        # The resident set must be mostly retained once trained.
        assert hits_late >= 0.6 * 8 * (rounds // 2 - 1)
