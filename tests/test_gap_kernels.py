"""Correctness and trace-shape tests for the six GAP kernels.

Algorithmic results are validated against networkx on small random
graphs; trace shape (PC counts, array regions, truncation) against the
paper's characterization claims.
"""

import networkx as nx
import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gap import (
    bfs,
    betweenness_centrality,
    connected_components,
    make_weights,
    pagerank,
    sssp,
    triangle_count,
)
from repro.gap.common import pick_sources
from repro.graphs import CSRGraph, cycle_graph, path_graph, star_graph, uniform_random


@pytest.fixture(scope="module")
def graph():
    return uniform_random(256, avg_degree=6, seed=11)


@pytest.fixture(scope="module")
def nx_graph(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges().tolist())
    return g


class TestBFS:
    def test_depths_match_networkx(self, graph, nx_graph):
        source = pick_sources(graph, 1)[0]
        run = bfs(graph, source=source)
        parents = run.values
        depths_nx = nx.single_source_shortest_path_length(nx_graph, source)

        def depth(v):
            d = 0
            while parents[v] != v:
                v = int(parents[v])
                d += 1
            return d

        for v, d_nx in depths_nx.items():
            assert depth(v) == d_nx

    def test_unreachable_marked(self, graph, nx_graph):
        source = pick_sources(graph, 1)[0]
        parents = bfs(graph, source=source).values
        reachable = set(nx.node_connected_component(nx_graph, source))
        for v in range(graph.num_vertices):
            if v not in reachable:
                assert parents[v] == -1

    def test_parent_edges_exist(self, graph):
        source = pick_sources(graph, 1)[0]
        parents = bfs(graph, source=source).values
        for v in range(graph.num_vertices):
            p = int(parents[v])
            if p != -1 and p != v:
                assert p in graph.neighbors_of(v).tolist()

    def test_path_graph_parents(self):
        g = path_graph(5)
        parents = bfs(g, source=0).values
        assert parents.tolist() == [0, 0, 1, 2, 3]

    def test_pc_count_is_small(self, graph):
        run = bfs(graph, source=pick_sources(graph, 1)[0])
        assert len(run.pcs) <= 8  # the paper's "very limited number of PCs"

    def test_multiple_sources_lengthen_trace(self, graph):
        src = pick_sources(graph, 1)[0]
        one = bfs(graph, source=src, num_sources=1)
        four = bfs(graph, source=src, num_sources=4)
        assert len(four.trace) > len(one.trace)

    def test_truncation_budget(self, graph):
        run = bfs(graph, num_sources=8, max_accesses=500)
        assert len(run.trace) == 500

    def test_invalid_source_raises(self, graph):
        with pytest.raises(WorkloadError):
            bfs(graph, sources=[10_000])


class TestPageRank:
    def test_matches_networkx(self, graph, nx_graph):
        run = pagerank(graph, num_iterations=40)
        # networkx pagerank on the same symmetric graph; dangling nodes
        # are handled differently, so compare only non-isolated vertices.
        nx_pr = nx.pagerank(nx_graph, alpha=0.85, max_iter=200, tol=1e-10)
        degrees = graph.out_degrees()
        mine = run.values
        mask = degrees > 0
        mine_n = mine[mask] / mine[mask].sum()
        theirs = np.array([nx_pr[v] for v in range(graph.num_vertices)])[mask]
        theirs_n = theirs / theirs.sum()
        assert np.allclose(mine_n, theirs_n, rtol=5e-2, atol=1e-4)

    def test_ranks_sum_near_one(self, graph):
        ranks = pagerank(graph, num_iterations=20).values
        assert ranks.sum() == pytest.approx(1.0, abs=0.1)

    def test_star_centre_has_highest_rank(self):
        g = star_graph(10)
        ranks = pagerank(g, num_iterations=30).values
        assert ranks.argmax() == 0

    def test_validation(self, graph):
        with pytest.raises(WorkloadError):
            pagerank(graph, num_iterations=0)
        with pytest.raises(WorkloadError):
            pagerank(graph, damping=1.5)

    def test_trace_has_gather_pattern(self, graph):
        """Gather PCs must touch many more blocks than the OA PC."""
        run = pagerank(graph, num_iterations=2)
        trace = run.trace
        pcs = run.pcs
        gather_pc = pcs["pr.gather_contrib"]
        na_pc = pcs["pr.load_neighbor"]
        gather_blocks = np.unique(trace.block_addrs()[trace.pcs == gather_pc]).size
        assert gather_blocks > 0
        assert (trace.pcs == na_pc).sum() == (trace.pcs == gather_pc).sum()


class TestConnectedComponents:
    def test_matches_networkx(self, graph, nx_graph):
        labels = connected_components(graph).values
        for comp in nx.connected_components(nx_graph):
            comp = list(comp)
            assert len({labels[v] for v in comp}) == 1

    def test_different_components_different_labels(self):
        # Two disjoint cycles: vertices 0-2 and 3-5.
        edges = np.array([[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3]])
        g = CSRGraph.from_edges(6, edges, symmetrize=True)
        labels = connected_components(g).values
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_vertices_keep_own_label(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1]]), symmetrize=True)
        labels = connected_components(g).values
        assert labels[2] == 2


class TestSSSP:
    def test_matches_dijkstra(self, graph):
        w = make_weights(graph, max_weight=16, seed=8)
        source = pick_sources(graph, 1)[0]
        run = sssp(graph, source=source, delta=8, weights=w)
        g = nx.DiGraph()
        for i, (u, v) in enumerate(graph.edges().tolist()):
            g.add_edge(u, v, weight=int(w[i]))
        expected = nx.single_source_dijkstra_path_length(g, source)
        d = run.values
        for v in range(graph.num_vertices):
            assert d[v] == expected.get(v, -1)

    @pytest.mark.parametrize("delta", [1, 4, 64, 10_000])
    def test_delta_insensitive(self, graph, delta):
        w = make_weights(graph, max_weight=8, seed=9)
        source = pick_sources(graph, 1)[0]
        baseline = sssp(graph, source=source, delta=16, weights=w).values
        other = sssp(graph, source=source, delta=delta, weights=w).values
        assert np.array_equal(baseline, other)

    def test_weights_validation(self, graph):
        with pytest.raises(WorkloadError):
            sssp(graph, weights=np.ones(3, dtype=np.int64))
        with pytest.raises(WorkloadError):
            sssp(graph, delta=0)

    def test_trace_contains_weight_stream(self, graph):
        run = sssp(graph)
        weight_pc = run.pcs["sssp.load_weight"]
        assert (run.trace.pcs == weight_pc).sum() > 0


class TestBC:
    def test_matches_networkx_single_source(self):
        g = uniform_random(64, avg_degree=5, seed=13)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(64))
        nxg.add_edges_from(g.edges().tolist())
        source = pick_sources(g, 1)[0]
        run = betweenness_centrality(g, sources=[source])
        # networkx betweenness restricted to one source.
        expected = nx.betweenness_centrality_subset(
            nxg, sources=[source], targets=list(nxg.nodes), normalized=False
        )
        mine = run.values
        for v in range(64):
            if v == source:
                continue
            # subset BC counts each unordered pair once; Brandes
            # single-source dependency equals 2x the subset value.
            assert mine[v] == pytest.approx(2 * expected[v], rel=1e-6, abs=1e-9)

    def test_path_graph_bc(self):
        g = path_graph(5)
        run = betweenness_centrality(g, sources=[0])
        # From source 0 on a path, dependency of vertex v counts all
        # shortest paths through it: delta[1]=3, delta[2]=2, delta[3]=1.
        assert run.values[1] == pytest.approx(3.0)
        assert run.values[2] == pytest.approx(2.0)
        assert run.values[3] == pytest.approx(1.0)

    def test_truncation(self):
        g = uniform_random(128, avg_degree=6, seed=14)
        run = betweenness_centrality(g, num_sources=4, max_accesses=300)
        assert len(run.trace) == 300
        assert run.trace.info.get("truncated")

    def test_source_validation(self):
        g = path_graph(3)
        with pytest.raises(WorkloadError):
            betweenness_centrality(g, sources=[99])


class TestTriangleCount:
    def test_matches_networkx(self, graph, nx_graph):
        count = triangle_count(graph).values
        expected = sum(nx.triangles(nx_graph).values()) // 3
        assert count == expected

    def test_cycle_has_no_triangles(self):
        assert triangle_count(cycle_graph(6)).values == 0

    def test_complete_graph_triangles(self):
        from repro.graphs import complete_graph

        assert triangle_count(complete_graph(5)).values == 10  # C(5,3)

    def test_truncation_marks_partial(self, graph):
        run = triangle_count(graph, max_accesses=200)
        assert len(run.trace) == 200
        assert run.trace.info.get("truncated")

    def test_pc_count_is_tiny(self, graph):
        assert len(triangle_count(graph).pcs) == 3


class TestKernelTraceShape:
    def test_all_kernels_have_few_pcs_and_big_footprints(self, graph):
        """The paper's E2 claim, verified at kernel level."""
        from repro.trace.stats import compute_trace_stats

        runs = [
            bfs(graph, source=pick_sources(graph, 1)[0]),
            pagerank(graph, num_iterations=2),
            connected_components(graph),
            sssp(graph),
            triangle_count(graph),
        ]
        for run in runs:
            stats = compute_trace_stats(run.trace)
            assert stats.num_pcs <= 8
            assert stats.mean_blocks_per_pc > 20
