"""Edge-case tests for benchmarks/check_regression.py (the CI gate).

The gate is a script, not a package module, so it is loaded via
importlib straight from the benchmarks/ directory.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)

SCALE = {"gap_window": 50_000, "gap_scale": 14, "spec_window": 50_000}


def write_results(results_dir: Path, speedup: float = 1.10, mpki: float = 4.0) -> None:
    """Write minimal fig2/fig3 artifacts in the emit-fixture shape."""
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "fig3_speedup.json").write_text(json.dumps({
        "headers": ["workload", "ship"],
        "rows": [["GEOMEAN", speedup]],
        "notes": dict(SCALE),
    }), encoding="utf-8")
    (results_dir / "fig2_mpki.json").write_text(json.dumps({
        "headers": ["workload", "lru"],
        "rows": [["MEAN", mpki]],
        "notes": {k: SCALE[k] for k in ("gap_window", "gap_scale")},
    }), encoding="utf-8")


def write_baseline(
    path: Path,
    speedup: float = 1.10,
    mpki: float = 4.0,
    tol_abs: float = 0.02,
    tol_rel: float = 0.10,
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "scale": dict(SCALE),
        "metrics": {
            "fig3_speedup": {
                "tolerance_abs": tol_abs,
                "values": {"GEOMEAN": {"ship": speedup}},
            },
            "fig2_mpki": {
                "tolerance_rel": tol_rel,
                "values": {"MEAN": {"lru": mpki}},
            },
        },
    }), encoding="utf-8")


@pytest.fixture
def gate_dirs(tmp_path):
    results = tmp_path / "results"
    expected = tmp_path / "expected" / "smoke.json"
    write_results(results)
    write_baseline(expected)
    return results, expected


def run_gate(results: Path, expected: Path, *extra: str) -> int:
    return check_regression.main(
        ["--results", str(results), "--expected", str(expected), *extra]
    )


class TestExitCodes:
    def test_within_tolerance_exits_zero(self, gate_dirs):
        results, expected = gate_dirs
        assert run_gate(results, expected) == 0

    def test_missing_baseline_exits_two(self, gate_dirs, capsys):
        results, expected = gate_dirs
        expected.unlink()
        assert run_gate(results, expected) == 2
        assert "missing baseline" in capsys.readouterr().err

    def test_missing_results_artifact_exits_two(self, gate_dirs, capsys):
        results, expected = gate_dirs
        (results / "fig3_speedup.json").unlink()
        assert run_gate(results, expected) == 2
        assert "missing results artifact" in capsys.readouterr().err

    def test_regression_exits_one(self, gate_dirs, capsys):
        results, expected = gate_dirs
        write_results(results, speedup=1.20)  # drift 0.10 > abs limit 0.02
        assert run_gate(results, expected) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestTolerances:
    def test_exactly_at_abs_threshold_passes(self, gate_dirs):
        """drift == limit is within tolerance, not a regression.

        Values are binary-exact (1.25 - 1.0 == 0.25) so the comparison
        really is at-threshold, not a float hair over it.
        """
        results, expected = gate_dirs
        write_baseline(expected, speedup=1.0, tol_abs=0.25)
        write_results(results, speedup=1.25)
        assert run_gate(results, expected) == 0

    def test_just_over_abs_threshold_fails(self, gate_dirs):
        results, expected = gate_dirs
        write_baseline(expected, speedup=1.0, tol_abs=0.25)
        write_results(results, speedup=1.2501)
        assert run_gate(results, expected) == 1

    def test_exactly_at_rel_threshold_passes(self, gate_dirs):
        results, expected = gate_dirs
        write_baseline(expected, mpki=4.0, tol_rel=0.25)  # limit = 1.0 exactly
        write_results(results, mpki=5.0)
        assert run_gate(results, expected) == 0

    def test_missing_cell_fails(self, gate_dirs, capsys):
        results, expected = gate_dirs
        write_baseline(expected)
        doc = json.loads(expected.read_text(encoding="utf-8"))
        doc["metrics"]["fig3_speedup"]["values"]["GEOMEAN"]["hawkeye"] = 1.0
        expected.write_text(json.dumps(doc), encoding="utf-8")
        assert run_gate(results, expected) == 1
        assert "missing cell" in capsys.readouterr().err


class TestScaleGuard:
    def test_scale_mismatch_refused(self, gate_dirs, capsys):
        """Full-scale results never gate against a smoke baseline."""
        results, expected = gate_dirs
        doc = json.loads((results / "fig3_speedup.json").read_text(encoding="utf-8"))
        doc["notes"]["gap_window"] = 2_000_000
        (results / "fig3_speedup.json").write_text(json.dumps(doc), encoding="utf-8")
        assert run_gate(results, expected) == 1
        assert "REPRO_SMOKE" in capsys.readouterr().err


class TestMarkdownSummary:
    def test_appends_table(self, gate_dirs, tmp_path):
        results, expected = gate_dirs
        summary = tmp_path / "summary.md"
        summary.write_text("# prior content\n", encoding="utf-8")
        assert run_gate(results, expected, "--markdown", str(summary)) == 0
        text = summary.read_text(encoding="utf-8")
        assert text.startswith("# prior content")  # appended, not clobbered
        assert "## Benchmark regression gate" in text
        assert "| fig3_speedup | GEOMEAN | ship " in text
        assert "✅" in text

    def test_failure_verdict_and_other_failures(self, gate_dirs, tmp_path):
        results, expected = gate_dirs
        write_results(results, speedup=1.50)
        doc = json.loads((results / "fig2_mpki.json").read_text(encoding="utf-8"))
        doc["notes"]["gap_scale"] = 99
        (results / "fig2_mpki.json").write_text(json.dumps(doc), encoding="utf-8")
        summary = tmp_path / "summary.md"
        assert run_gate(results, expected, "--markdown", str(summary)) == 1
        text = summary.read_text(encoding="utf-8")
        assert "❌" in text
        assert "Other failures:" in text
        assert "gap_scale" in text


def make_entry(
    sha: str = "aaaa1111bbbb2222",
    fast_cps: float = 1.5,
    batched_cps: float = 5.0,
    speedup: float | None = None,
) -> dict:
    cells = 210
    return {
        "schema": 1,
        "git_sha": sha,
        "date": "2026-08-08T12:00:00Z",
        "smoke": True,
        "jobs": 2,
        "matrix": {"workloads": 30, "policies": 7, "cells": cells},
        "engines": {
            "fast": {
                "wall_s": round(cells / fast_cps, 3),
                "cells_per_sec": fast_cps,
            },
            "batched": {
                "wall_s": round(cells / batched_cps, 3),
                "cells_per_sec": batched_cps,
            },
        },
        "batched_speedup": (
            round(batched_cps / fast_cps, 3) if speedup is None else speedup
        ),
    }


def write_trajectory(path: Path, entries: list[dict]) -> None:
    path.write_text(
        json.dumps({"schema": 1, "entries": entries}), encoding="utf-8"
    )


def run_trajectory_gate(path: Path, *extra: str) -> int:
    return check_regression.main(
        ["--trajectory", "--trajectory-file", str(path), *extra]
    )


class TestTrajectoryGate:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert run_trajectory_gate(tmp_path / "absent.json") == 2
        assert "missing trajectory file" in capsys.readouterr().err

    def test_empty_trajectory_exits_two(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [])
        assert run_trajectory_gate(path) == 2
        assert "no entries" in capsys.readouterr().err

    def test_single_healthy_entry_passes(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [make_entry()])  # 5.0/1.5 ≈ 3.33x
        assert run_trajectory_gate(path) == 0

    def test_speedup_below_floor_fails(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [make_entry(batched_cps=4.0)])  # 2.67x
        assert run_trajectory_gate(path) == 1
        assert "below the 3.0x floor" in capsys.readouterr().err

    def test_floor_is_configurable(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [make_entry(batched_cps=4.0)])
        assert run_trajectory_gate(path, "--min-batched-speedup", "2.5") == 0

    def test_missing_speedup_field_fails(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sweep.json"
        entry = make_entry()
        del entry["batched_speedup"]
        write_trajectory(path, [entry])
        assert run_trajectory_gate(path) == 1
        assert "no batched_speedup" in capsys.readouterr().err

    def test_throughput_regression_fails(self, tmp_path, capsys):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [
            make_entry(sha="previous00000000"),
            make_entry(sha="latest0000000000", fast_cps=1.2, batched_cps=4.0),
        ])  # fast dropped 20%, batched 20% — both past the 15% limit
        assert run_trajectory_gate(path) == 1
        err = capsys.readouterr().err
        assert "fast engine throughput regressed" in err
        assert "batched engine throughput regressed" in err

    def test_regression_within_limit_passes(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [
            make_entry(),
            make_entry(fast_cps=1.35, batched_cps=4.5),  # 10% slower
        ])
        assert run_trajectory_gate(path) == 0

    def test_only_latest_pair_is_gated(self, tmp_path):
        """Ancient history never fails the gate; only the last two do."""
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [
            make_entry(fast_cps=10.0, batched_cps=40.0),  # fast old host
            make_entry(),
            make_entry(fast_cps=1.45, batched_cps=4.9),
        ])
        assert run_trajectory_gate(path) == 0

    def test_markdown_trend_table(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [make_entry(sha="cafe000000000000")])
        summary = tmp_path / "summary.md"
        summary.write_text("# prior content\n", encoding="utf-8")
        assert run_trajectory_gate(path, "--markdown", str(summary)) == 0
        text = summary.read_text(encoding="utf-8")
        assert text.startswith("# prior content")
        assert "## Sweep-throughput trajectory" in text
        assert "| cafe00000000 " in text
        assert "✅ throughput trajectory healthy" in text

    def test_markdown_lists_failures(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_trajectory(path, [make_entry(batched_cps=4.0)])
        summary = tmp_path / "summary.md"
        assert run_trajectory_gate(path, "--markdown", str(summary)) == 1
        text = summary.read_text(encoding="utf-8")
        assert "❌" in text
        assert "Failures:" in text


class TestUpdate:
    def test_update_rewrites_baseline_that_then_passes(self, gate_dirs):
        results, expected = gate_dirs
        write_results(results, speedup=1.33, mpki=7.5)
        assert run_gate(results, expected, "--update") == 0
        doc = json.loads(expected.read_text(encoding="utf-8"))
        assert doc["metrics"]["fig3_speedup"]["values"]["GEOMEAN"]["ship"] == 1.33
        assert run_gate(results, expected) == 0
