"""Tests for result containers and the registry/error surfaces."""

import pytest

from repro.core.results import LevelStats, SimulationResult
from repro.errors import (
    ConfigurationError,
    GraphError,
    PolicyError,
    ReproError,
    SimulationError,
    TraceError,
    TraceFormatError,
    UnknownPolicyError,
    WorkloadError,
)
from repro.mem.cache import CacheStats
from repro.mem.hierarchy import ServiceLevel
from repro.policies.registry import (
    BASELINE_POLICY,
    PAPER_POLICIES,
    available_policies,
    make_policy,
    register_policy,
)


def make_result(workload="w", policy="lru", instructions=1000, cycles=500.0,
                llc_hits=10, llc_accesses=100) -> SimulationResult:
    levels = {
        "LLC": LevelStats(
            name="LLC", demand_accesses=llc_accesses, demand_hits=llc_hits,
            writeback_accesses=0, prefetch_accesses=0, prefetch_hits=0,
            evictions=0, dirty_evictions=0, bypasses=0,
        )
    }
    return SimulationResult(
        workload=workload, policy=policy, instructions=instructions,
        cycles=cycles, levels=levels, served_by={}, l1d_misses=50,
        l1d_misses_to_dram=25, dram_reads=20, dram_writes=5,
        dram_row_hit_rate=0.5, mean_load_latency=80.0,
    )


class TestLevelStats:
    def test_derived_metrics(self):
        stats = LevelStats(
            name="L1D", demand_accesses=100, demand_hits=80,
            writeback_accesses=5, prefetch_accesses=0, prefetch_hits=0,
            evictions=3, dirty_evictions=1, bypasses=0,
        )
        assert stats.demand_misses == 20
        assert stats.demand_hit_rate == pytest.approx(0.8)
        assert stats.mpki(10_000) == pytest.approx(2.0)

    def test_zero_accesses(self):
        stats = LevelStats("X", 0, 0, 0, 0, 0, 0, 0, 0)
        assert stats.demand_hit_rate == 0.0
        assert stats.mpki(0) == 0.0

    def test_from_cache_stats(self):
        cs = CacheStats(demand_accesses=10, demand_hits=7, evictions=2)
        stats = LevelStats.from_cache_stats("L2C", cs)
        assert stats.demand_misses == 3
        assert stats.evictions == 2


class TestSimulationResult:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(2.0)

    def test_llc_mpki(self):
        assert make_result().llc_mpki == pytest.approx(90.0)

    def test_dram_fraction(self):
        assert make_result().l1d_miss_dram_fraction == pytest.approx(0.5)

    def test_speedup(self):
        fast = make_result(cycles=250.0)
        slow = make_result(cycles=500.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_cross_workload_rejected(self):
        with pytest.raises(ValueError):
            make_result(workload="a").speedup_over(make_result(workload="b"))

    def test_summary_format(self):
        s = make_result().summary()
        assert "w [lru]" in s and "IPC=2.000" in s


class TestRegistry:
    def test_all_paper_policies_available(self):
        names = available_policies()
        assert BASELINE_POLICY in names
        for p in PAPER_POLICIES:
            assert p in names

    def test_paper_policy_order_matches_figure3(self):
        assert PAPER_POLICIES == ("srrip", "drrip", "ship", "hawkeye", "glider", "mpppb")

    def test_make_policy_returns_fresh_instances(self):
        a = make_policy("lru")
        b = make_policy("lru")
        assert a is not b

    def test_unknown_policy_lists_available(self):
        with pytest.raises(UnknownPolicyError, match="lru"):
            make_policy("bogus")

    def test_case_insensitive(self):
        assert make_policy("LRU").name == "lru"

    def test_custom_registration(self):
        from repro.policies.basic import LRUPolicy

        class Custom(LRUPolicy):
            name = "custom-test"

        register_policy("custom-test", Custom)
        try:
            assert make_policy("custom-test").name == "custom-test"
        finally:
            # keep the global registry clean for other tests
            from repro.policies import registry

            registry._REGISTRY.pop("custom-test", None)

    def test_opt_not_in_registry(self):
        """OPT needs a recorded future; it must not be name-constructible."""
        assert "opt" not in available_policies()


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            ConfigurationError,
            TraceError,
            TraceFormatError,
            PolicyError,
            UnknownPolicyError,
            GraphError,
            WorkloadError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_trace_format_is_trace_error(self):
        assert issubclass(TraceFormatError, TraceError)

    def test_unknown_policy_is_policy_error(self):
        assert issubclass(UnknownPolicyError, PolicyError)
