"""Tests for the GAP suite driver (specs, graph building, suite API)."""

import pytest

from repro.errors import WorkloadError
from repro.gap.suite import (
    GAP_KERNELS,
    GapWorkloadSpec,
    build_graph,
    default_specs,
    gap_suite,
    run_kernel,
)
from repro.graphs import uniform_random


class TestSpecs:
    def test_canonical_kernel_order(self):
        assert GAP_KERNELS == ("bfs", "pr", "cc", "sssp", "bc", "tc")

    def test_spec_name(self):
        spec = GapWorkloadSpec(kernel="bfs", graph_name="kron", scale=15, degree=16)
        assert spec.name == "bfs.kron15"

    def test_default_specs_cover_all_kernels(self):
        specs = default_specs(scale=10)
        assert [s.kernel for s in specs] == list(GAP_KERNELS)
        assert all(s.scale == 10 for s in specs)


class TestBuildGraph:
    def test_kron_family(self):
        g = build_graph(GapWorkloadSpec("bfs", "kron", scale=8, degree=8))
        assert g.num_vertices == 256

    def test_urand_family(self):
        g = build_graph(GapWorkloadSpec("bfs", "urand", scale=8, degree=8))
        assert g.num_vertices == 256

    def test_unknown_family(self):
        with pytest.raises(WorkloadError, match="graph family"):
            build_graph(GapWorkloadSpec("bfs", "mystery", scale=8, degree=8))


class TestRunKernel:
    @pytest.fixture(scope="class")
    def graph(self):
        return uniform_random(128, avg_degree=6, seed=3)

    @pytest.mark.parametrize("kernel", GAP_KERNELS)
    def test_every_kernel_runs(self, graph, kernel):
        run = run_kernel(kernel, graph, trace_name=f"{kernel}.test",
                         max_accesses=2000)
        assert run.trace.name == f"{kernel}.test"
        assert 0 < len(run.trace) <= 2000

    def test_unknown_kernel(self, graph):
        with pytest.raises(WorkloadError, match="unknown GAP kernel"):
            run_kernel("dijkstra", graph, trace_name="x")


class TestGapSuite:
    def test_suite_on_tiny_scale(self):
        traces = gap_suite(scale=9, degree=8, kernels=("bfs", "pr"),
                           max_accesses=3000)
        assert set(traces) == {"bfs.kron9", "pr.kron9"}
        for t in traces.values():
            assert len(t) <= 3000

    def test_suite_shares_one_graph(self):
        """All kernels of one suite call run on the same graph: their OA
        regions must produce identical address sets for full passes."""
        traces = gap_suite(scale=9, degree=8, kernels=("pr", "cc"),
                           max_accesses=None)
        # Determinism check at the suite level: rebuilding is identical.
        again = gap_suite(scale=9, degree=8, kernels=("pr", "cc"),
                          max_accesses=None)
        import numpy as np

        for name in traces:
            assert np.array_equal(traces[name].records, again[name].records)

    def test_urand_suite(self):
        traces = gap_suite(scale=9, degree=8, graph_name="urand",
                           kernels=("bfs",), max_accesses=2000)
        assert "bfs.urand9" in traces
