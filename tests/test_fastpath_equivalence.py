"""Differential equivalence: the fast engine vs the reference engine.

The fast path (repro.mem.fastpath) re-implements the L1/L2/core hot loop
with flattened state; every test here holds it to the only acceptable
standard — *bit-identical* SimulationResult JSON against the reference
four-call chain, across policies, trace families, telemetry modes and
warm-up fractions. Fallback behaviour (configurations the fast path does
not model) and post-run state parity are covered as well.
"""

import json

import pytest

from conftest import make_trace
from repro.core.config import small_test_machine
from repro.core.simulator import build_hierarchy, simulate
from repro.errors import ConfigurationError
from repro.harness.equivalence import (
    EquivalenceReport,
    ifetch_mix,
    verify_fastpath,
)
from repro.mem.fastpath import FastMachine, fastpath_eligible
from repro.mem.prefetcher import NextLinePrefetcher
from repro.policies.registry import available_policies
from repro.telemetry import TelemetryConfig
from repro.trace import synthetic
from repro.trace.record import AccessKind


def canonical(result) -> str:
    return json.dumps(result.to_json_dict(), sort_keys=True)


def assert_engines_match(trace, **kwargs):
    fast = simulate(trace, engine="fast", **kwargs)
    ref = simulate(trace, engine="reference", **kwargs)
    assert canonical(fast) == canonical(ref)
    return fast


@pytest.fixture(scope="module")
def zipf():
    return synthetic.zipf_reuse(8_000, num_blocks=1024, seed=11)


class TestAllPolicies:
    @pytest.mark.parametrize("policy", available_policies())
    def test_bit_identical_per_policy(self, small_machine, zipf, policy):
        assert_engines_match(zipf, config=small_machine, llc_policy=policy)


class TestTraceFamilies:
    def test_gap_trace(self, small_machine):
        from repro.gap.suite import gap_suite

        (trace,) = gap_suite(
            scale=10, degree=8, kernels=("bfs",), max_accesses=6_000
        ).values()
        for policy in ("lru", "ship"):
            assert_engines_match(trace, config=small_machine, llc_policy=policy)

    def test_spec_trace(self, small_machine):
        from repro.spec.suite import build_spec_workload

        trace = build_spec_workload("spec06", "mcf", num_accesses=6_000)
        for policy in ("lru", "hawkeye"):
            assert_engines_match(trace, config=small_machine, llc_policy=policy)

    def test_ifetch_heavy_trace(self, small_machine):
        trace = ifetch_mix(6_000, seed=5)
        assert int(trace.kinds.max()) == int(AccessKind.IFETCH)
        result = assert_engines_match(trace, config=small_machine, llc_policy="lru")
        # The L1I path really ran: fetches hit a separate cache.
        assert result.levels["L1I"].demand_accesses > 0

    def test_store_heavy_trace(self, small_machine):
        # Stores drive the dirty/writeback cascade on every level.
        trace = synthetic.zipf_reuse(6_000, num_blocks=2048, seed=9)
        kinds = trace.kinds.copy()
        kinds[::2] = AccessKind.STORE
        from repro.trace.trace import Trace

        stores = Trace.from_arrays(
            trace.addrs.copy(), trace.pcs.copy(), kinds, trace.gaps.copy(),
            name="synthetic.store_heavy",
        )
        assert_engines_match(stores, config=small_machine, llc_policy="srrip")


class TestTelemetryAndWarmup:
    @pytest.mark.parametrize("policy", ["lru", "ship", "drrip"])
    def test_telemetry_armed_bit_identical(self, small_machine, zipf, policy):
        assert_engines_match(
            zipf,
            config=small_machine,
            llc_policy=policy,
            telemetry=TelemetryConfig(interval_instructions=3_000),
        )

    @pytest.mark.parametrize("warmup", [0.0, 0.5, 0.9])
    def test_warmup_fractions(self, small_machine, zipf, warmup):
        assert_engines_match(
            zipf, config=small_machine, llc_policy="lru", warmup_fraction=warmup
        )

    def test_telemetry_long_gap_boundary_jump(self, small_machine):
        # One gap spanning several intervals must close/realign exactly
        # as the reference per-record check does.
        trace = make_trace(
            [i * 64 for i in range(200)],
            gaps=[1] * 100 + [50_000] + [1] * 99,
        )
        assert_engines_match(
            trace,
            config=small_machine,
            llc_policy="lru",
            telemetry=TelemetryConfig(interval_instructions=4_000),
        )


class TestFallback:
    def test_prefetcher_falls_back(self, small_machine, zipf):
        h = build_hierarchy(small_machine, "lru", l2_prefetcher=NextLinePrefetcher())
        assert not fastpath_eligible(h, zipf)
        # engine="fast" must still work (silently using the reference loop).
        assert_engines_match(
            zipf, config=small_machine, l2_prefetcher=NextLinePrefetcher()
        )

    def test_inclusive_falls_back(self, small_machine, zipf):
        h = build_hierarchy(small_machine, "lru", inclusive=True)
        assert not fastpath_eligible(h, zipf)

    def test_sanitize_falls_back(self, small_machine, zipf):
        assert_engines_match(zipf, config=small_machine, llc_policy="lru",
                             sanitize=True)

    def test_writeback_kind_falls_back(self, small_machine):
        trace = make_trace([0, 64, 128], kinds=int(AccessKind.WRITEBACK))
        h = build_hierarchy(small_machine, "lru")
        assert not fastpath_eligible(h, trace)
        assert_engines_match(trace, config=small_machine, llc_policy="lru")

    def test_non_lru_upper_level_falls_back(self, small_machine, zipf):
        from repro.policies.registry import make_policy

        h = build_hierarchy(small_machine, "lru")
        h.l1d.policy = make_policy("fifo")
        assert not fastpath_eligible(h, zipf)

    def test_plain_machine_is_eligible(self, small_machine, zipf):
        h = build_hierarchy(small_machine, "hawkeye")
        assert fastpath_eligible(h, zipf)


class TestStateCheckin:
    def test_post_run_cache_state_identical(self, small_machine, zipf):
        """After a run, tags/dirty/LRU-order must match the reference."""
        hf = build_hierarchy(small_machine, "ship")
        hr = build_hierarchy(small_machine, "ship")
        simulate(zipf, config=small_machine, hierarchy=hf, engine="fast")
        simulate(zipf, config=small_machine, hierarchy=hr, engine="reference")
        for name in ("L1I", "L1D", "L2C", "LLC"):
            cf, cr = hf.caches[name], hr.caches[name]
            assert cf._tags == cr._tags, name
            assert cf._dirty == cr._dirty, name
        # LRU stamp *values* differ (shared clock), but the recency order
        # inside every set — all that LRU behaviour depends on — matches.
        for name in ("L1I", "L1D", "L2C"):
            sf = hf.caches[name].policy._stamp
            sr = hr.caches[name].policy._stamp
            for row_f, row_r in zip(sf, sr):
                order_f = sorted(range(len(row_f)), key=row_f.__getitem__)
                order_r = sorted(range(len(row_r)), key=row_r.__getitem__)
                assert order_f == order_r, name

    def test_rerun_on_checked_in_state_stays_identical(self, small_machine, zipf):
        """A second simulate() on the same hierarchy stays bit-identical —
        checkin must leave a machine the next run can trust."""
        hf = build_hierarchy(small_machine, "lru")
        hr = build_hierarchy(small_machine, "lru")
        for h, engine in ((hf, "fast"), (hr, "reference")):
            simulate(zipf, config=small_machine, hierarchy=h, engine=engine)
        second_fast = simulate(
            zipf, config=small_machine, hierarchy=hf, engine="fast"
        )
        second_ref = simulate(
            zipf, config=small_machine, hierarchy=hr, engine="reference"
        )
        assert canonical(second_fast) == canonical(second_ref)

    def test_checkout_of_warmed_hierarchy(self, small_machine, zipf):
        """FastMachine must faithfully check out non-empty cache state."""
        h = build_hierarchy(small_machine, "lru")
        simulate(zipf, config=small_machine, hierarchy=h, engine="reference")
        fast = FastMachine(h)
        for lvl, cache in ((fast.l1d, h.l1d), (fast.l2, h.l2)):
            assert lvl.tags == [t for row in cache._tags for t in row]
            assert lvl.index == {
                t: i for i, t in enumerate(lvl.tags) if t != -1
            }
            assert lvl.occupancy == [
                sum(1 for t in row if t != -1) for row in cache._tags
            ]


class TestEngineParameter:
    def test_invalid_engine_rejected(self, small_machine, zipf):
        with pytest.raises(ConfigurationError, match="engine"):
            simulate(zipf, config=small_machine, engine="warp")

    def test_engine_not_recorded_in_info(self, small_machine, zipf):
        result = simulate(zipf, config=small_machine, engine="fast")
        assert "engine" not in result.info


class TestHarness:
    def test_verify_fastpath_passes(self, small_machine):
        traces = {"zipf": synthetic.zipf_reuse(3_000, num_blocks=512, seed=3)}
        report = verify_fastpath(
            config=small_machine, policies=["lru", "ship"], traces=traces
        )
        assert isinstance(report, EquivalenceReport)
        assert report.passed
        assert report.fast_coverage == len(report.cases) == 4
        assert "PASS" in report.render()

    def test_report_render_names_mismatched_fields(self):
        from repro.harness.equivalence import EquivalenceCase

        report = EquivalenceReport(cases=[
            EquivalenceCase(
                workload="w", policy="p", telemetry=False, warmup_fraction=0.2,
                fast_used=True, matched=False, mismatched_fields=("core", "dram"),
            )
        ])
        assert not report.passed
        rendered = report.render()
        assert "FAIL" in rendered and "core" in rendered and "dram" in rendered
