"""Unit tests for OPTgen and the sampled-set infrastructure."""

import pytest

from repro.policies.optgen import OPTGEN_VECTOR_SIZE, OptGen, SetSampler


class TestOptGen:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            OptGen(capacity=0)

    def test_single_block_reuse_is_opt_hit(self):
        g = OptGen(capacity=2)
        q0 = g.add_access()
        q1 = g.add_access()
        assert g.should_cache(q1, q0)
        assert g.opt_hits == 1

    def test_capacity_exhaustion_is_opt_miss(self):
        """capacity=1 and two overlapping intervals: second one must miss."""
        g = OptGen(capacity=1)
        qa0 = g.add_access()  # A
        qb0 = g.add_access()  # B
        qa1 = g.add_access()  # A again
        assert g.should_cache(qa1, qa0)  # A occupies [qa0, qa1)
        qb1 = g.add_access()  # B again
        assert not g.should_cache(qb1, qb0)  # interval saturated at qa-range

    def test_capacity_two_allows_both(self):
        g = OptGen(capacity=2)
        qa0 = g.add_access()
        qb0 = g.add_access()
        qa1 = g.add_access()
        qb1 = g.add_access()
        assert g.should_cache(qa1, qa0)
        assert g.should_cache(qb1, qb0)

    def test_window_expiry(self):
        g = OptGen(capacity=8, vector_size=16)
        q0 = g.add_access()
        for _ in range(20):
            g.add_access()
        q_now = g.add_access()
        assert not g.in_window(q0)
        assert not g.should_cache(q_now, q0)

    def test_hit_rate(self):
        g = OptGen(capacity=4)
        q0 = g.add_access()
        q1 = g.add_access()
        g.should_cache(q1, q0)
        assert g.hit_rate == 1.0

    def test_matches_belady_on_small_sequence(self):
        """OPTgen hit count equals true OPT simulation on one set."""
        import numpy as np

        from repro.policies.belady import compute_next_use

        sequence = [0, 1, 2, 0, 3, 1, 0, 2, 4, 0, 1, 3, 2, 0]
        capacity = 2
        # True OPT, fully associative with bypass (what OPTgen models).
        next_use = compute_next_use(np.array(sequence, dtype=np.uint64))
        cache: set[int] = set()
        opt_hits = 0
        line_next: dict[int, int] = {}
        for i, block in enumerate(sequence):
            if block in cache:
                opt_hits += 1
            else:
                if len(cache) < capacity:
                    cache.add(block)
                else:
                    victim = max(cache, key=lambda b: line_next[b])
                    if line_next[victim] > next_use[i]:
                        cache.discard(victim)
                        cache.add(block)
            if block in cache:
                line_next[block] = next_use[i]
        # OPTgen reconstruction.
        g = OptGen(capacity=capacity)
        last: dict[int, int] = {}
        optgen_hits = 0
        for block in sequence:
            q = g.add_access()
            if block in last:
                optgen_hits += g.should_cache(q, last[block])
            last[block] = q
        assert optgen_hits == opt_hits


class TestSetSampler:
    def test_samples_requested_number_of_sets(self):
        s = SetSampler(num_sets=2048, num_ways=16, num_sampled=64)
        assert len(s.sampled_sets) == 64

    def test_small_caches_fully_sampled(self):
        s = SetSampler(num_sets=8, num_ways=4, num_sampled=64)
        assert len(s.sampled_sets) == 8

    def test_unsampled_set_returns_nothing(self):
        s = SetSampler(num_sets=2048, num_ways=16)
        unsampled = next(i for i in range(2048) if s.get(i) is None)
        decided, prev, evicted = s.observe(unsampled, block=1, pc=2)
        assert not decided and prev is None and evicted is None

    def test_reuse_returns_previous_entry_with_verdict(self):
        s = SetSampler(num_sets=8, num_ways=4, num_sampled=1)
        target = s.sampled_sets[0]
        s.observe(target, block=1, pc=0x100, context="ctx")
        decided, prev, _ = s.observe(target, block=1, pc=0x200)
        assert decided
        assert prev.pc == 0x100
        assert prev.context == "ctx"
        assert prev.opt_hit is True

    def test_entry_updates_to_latest_access(self):
        s = SetSampler(num_sets=8, num_ways=4, num_sampled=1)
        target = s.sampled_sets[0]
        s.observe(target, block=1, pc=0x100)
        s.observe(target, block=1, pc=0x200)
        decided, prev, _ = s.observe(target, block=1, pc=0x300)
        assert prev.pc == 0x200

    def test_lru_eviction_of_sampler_entries(self):
        s = SetSampler(num_sets=8, num_ways=1, num_sampled=1)
        target = s.sampled_sets[0]
        capacity = 8 * 1  # SAMPLER_WAYS_FACTOR * ways
        evicted_pcs = []
        for i in range(capacity + 2):
            _, _, evicted = s.observe(target, block=100 + i, pc=i)
            if evicted is not None:
                evicted_pcs.append(evicted.pc)
        assert evicted_pcs == [0, 1]  # oldest first

    def test_aggregate_hit_rate(self):
        s = SetSampler(num_sets=8, num_ways=4, num_sampled=1)
        target = s.sampled_sets[0]
        s.observe(target, block=1, pc=0)
        s.observe(target, block=1, pc=0)
        assert s.aggregate_opt_hit_rate() == 1.0
