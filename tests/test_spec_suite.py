"""Tests for the SPEC proxy suites."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.spec import (
    build_spec_workload,
    spec06_workloads,
    spec17_workloads,
    spec_suite,
)
from repro.spec.patterns import (
    banded_stride,
    phased_mix,
    pointer_working_set,
    scan_plus_resident,
    skewed_reuse,
    thrash_cycle,
)


class TestSuiteContents:
    def test_spec06_has_the_canonical_benchmarks(self):
        names = spec06_workloads()
        for expected in ("mcf", "omnetpp", "libquantum", "soplex", "milc"):
            assert expected in names
        assert len(names) >= 10

    def test_spec17_has_rate_suffixed_names(self):
        names = spec17_workloads()
        assert "mcf_r" in names
        assert "lbm_r" in names
        assert len(names) >= 10

    def test_workload_names_carry_suite_prefix(self):
        t = build_spec_workload("spec06", "mcf", num_accesses=100)
        assert t.name == "spec06.mcf"

    def test_suite_builds_all(self):
        traces = spec_suite("spec06", num_accesses=500)
        assert len(traces) == len(spec06_workloads())
        for name, t in traces.items():
            assert len(t) >= 400, name  # phased mixes may round down a little

    def test_selected_workloads(self):
        traces = spec_suite("spec17", num_accesses=500, workloads=["mcf_r"])
        assert list(traces) == ["spec17.mcf_r"]

    def test_unknown_suite_raises(self):
        with pytest.raises(WorkloadError, match="spec06 or spec17"):
            build_spec_workload("spec99", "mcf")

    def test_unknown_workload_raises_with_available_list(self):
        with pytest.raises(WorkloadError, match="available"):
            build_spec_workload("spec06", "nonesuch")

    def test_rejects_nonpositive_accesses(self):
        with pytest.raises(WorkloadError):
            build_spec_workload("spec06", "mcf", num_accesses=0)


class TestDeterminism:
    @pytest.mark.parametrize("suite", ["spec06", "spec17"])
    def test_rebuild_is_identical(self, suite):
        names = (spec06_workloads() if suite == "spec06" else spec17_workloads())[:3]
        a = spec_suite(suite, num_accesses=2000, workloads=names)
        b = spec_suite(suite, num_accesses=2000, workloads=names)
        for name in a:
            assert np.array_equal(a[name].records, b[name].records), name


class TestBehaviourClasses:
    def test_proxies_have_distinct_footprints(self):
        # Long enough that the bounded working set saturates (32768
        # blocks) while the stream keeps growing one block per access.
        streaming = build_spec_workload("spec06", "libquantum", 120_000)
        resident = build_spec_workload("spec06", "sphinx3", 120_000)
        assert streaming.footprint_blocks() > 3 * resident.footprint_blocks()

    def test_proxies_are_pc_rich_compared_to_gap(self):
        """SPEC proxies must have the many-PC structure GAP lacks."""
        from repro.trace.stats import compute_trace_stats

        t = build_spec_workload("spec06", "sphinx3", 20_000)
        stats = compute_trace_stats(t)
        assert stats.num_pcs >= 8

    def test_mcf_proxy_mixes_chase_and_resident(self):
        t = build_spec_workload("spec06", "mcf", 30_000)
        # Two distinct address regions: the chase structure and metadata.
        regions = np.unique(t.addrs >> np.uint64(32))
        assert len(regions) >= 2


class TestPatternBuilders:
    def test_scan_plus_resident_fraction(self):
        t = scan_plus_resident(10_000, resident_bytes=64 * 1024, scan_fraction=0.5)
        # Scan addresses live in their own high region.
        scan_accesses = np.count_nonzero(t.addrs >= 0x7000_0000)
        assert 0.3 < scan_accesses / len(t) < 0.7

    def test_thrash_cycle_footprint(self):
        t = thrash_cycle(5000, cycle_bytes=64 * 128)
        assert t.footprint_blocks() == 128

    def test_pointer_working_set_interleaves(self):
        t = pointer_working_set(
            9000, structure_bytes=64 * 1024, resident_bytes=16 * 1024
        )
        assert len(t) > 8000

    def test_skewed_reuse_hot_head(self):
        t = skewed_reuse(20_000, footprint_bytes=64 * 4096, skew=1.1)
        _, counts = np.unique(t.block_addrs(), return_counts=True)
        assert counts.max() > 20

    def test_banded_stride_uses_bands(self):
        t = banded_stride(8000, band_bytes=64 * 1024, num_bands=4)
        regions = np.unique(t.addrs >> np.uint64(32))
        assert len(regions) == 4

    def test_phased_mix_has_phases(self):
        t = phased_mix(8000, resident_bytes=32 * 1024, scan_bytes=128 * 1024)
        # First and last quarters live in different 256 MiB regions.
        first = t.addrs[: len(t) // 4]
        last = t.addrs[-len(t) // 4 :]
        assert (first >> np.uint64(28)).max() != (last >> np.uint64(28)).max()


class TestSpec17BehaviourClasses:
    def test_mcf_r_larger_than_mcf(self):
        mcf06 = build_spec_workload("spec06", "mcf", 60_000)
        mcf17 = build_spec_workload("spec17", "mcf_r", 60_000)
        assert mcf17.footprint_blocks() > mcf06.footprint_blocks()

    def test_x264_is_llc_resident(self):
        t = build_spec_workload("spec17", "x264_r", 60_000)
        # 896 KiB working set: below the 1.375 MiB LLC.
        assert t.footprint_bytes() < 1408 * 1024

    def test_fotonik_is_thrash_class(self):
        t = build_spec_workload("spec17", "fotonik3d_r", 150_000)
        # Cyclic: once the trace wraps, footprint equals the cycle size.
        assert t.footprint_blocks() == (4 * 1024 * 1024) // 64

    def test_suites_do_not_share_names(self):
        assert not (set(spec06_workloads()) & set(spec17_workloads()))
