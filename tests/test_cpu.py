"""Tests for the ROB-occupancy core timing model."""

import pytest

from repro.core.config import CoreConfig
from repro.core.cpu import CoreModel
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD
STORE = AccessKind.STORE


def run(steps, **core_kwargs):
    core = CoreModel(CoreConfig(**core_kwargs))
    for gap, kind, latency in steps:
        core.step(gap, kind, latency)
    return core.drain()


class TestBaseline:
    def test_ipc_capped_by_width(self):
        stats = run([(4, LOAD, 0)] * 100, dispatch_width=4)
        assert stats.ipc == pytest.approx(4.0, rel=0.05)

    def test_instructions_counted(self):
        stats = run([(3, LOAD, 1)] * 10)
        assert stats.instructions == 30

    def test_zero_steps(self):
        stats = run([])
        assert stats.instructions == 0
        assert stats.cycles == 0.0
        assert stats.ipc == 0.0


class TestLatencyHiding:
    def test_short_latencies_fully_hidden(self):
        """L1-hit latencies are absorbed by the ROB."""
        fast = run([(4, LOAD, 4)] * 200, rob_size=128)
        assert fast.ipc == pytest.approx(4.0, rel=0.05)

    def test_long_latencies_stall(self):
        # Generous MSHRs so the ROB is the binding limit.
        slow = run([(4, LOAD, 400)] * 200, rob_size=128, max_outstanding_misses=64)
        fast = run([(4, LOAD, 4)] * 200, rob_size=128, max_outstanding_misses=64)
        assert slow.ipc < fast.ipc / 2
        assert slow.rob_stall_cycles > 0

    def test_mlp_overlaps_independent_misses(self):
        """With a big ROB, k misses in the window overlap: IPC scales up."""
        big_rob = run([(8, LOAD, 300)] * 200, rob_size=256, max_outstanding_misses=16)
        tiny_rob = run([(8, LOAD, 300)] * 200, rob_size=8, max_outstanding_misses=16)
        assert big_rob.ipc > 2 * tiny_rob.ipc

    def test_mshr_limit_caps_overlap(self):
        many_mshr = run([(4, LOAD, 300)] * 200, rob_size=512, max_outstanding_misses=32)
        few_mshr = run([(4, LOAD, 300)] * 200, rob_size=512, max_outstanding_misses=2)
        assert many_mshr.ipc > few_mshr.ipc
        assert few_mshr.mshr_stall_cycles > 0


class TestStores:
    def test_stores_do_not_stall(self):
        stores = run([(4, STORE, 400)] * 200)
        assert stores.ipc == pytest.approx(4.0, rel=0.05)

    def test_store_latency_not_counted_in_load_stats(self):
        stats = run([(4, STORE, 400)] * 10)
        assert stats.load_accesses == 0


class TestStats:
    def test_mean_load_latency(self):
        stats = run([(4, LOAD, 100), (4, LOAD, 200)])
        assert stats.mean_load_latency == pytest.approx(150.0)

    def test_drain_waits_for_inflight(self):
        core = CoreModel(CoreConfig())
        core.step(1, LOAD, 10_000)
        stats = core.drain()
        assert stats.cycles >= 10_000
