"""Tests for the run-matrix harness and experiment drivers (small scale)."""

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.errors import SimulationError
from repro.harness.experiments import (
    ExperimentReport,
    experiment_table1,
)
from repro.harness.runner import run_matrix
from repro.trace import synthetic


def tiny_config() -> MachineConfig:
    return MachineConfig(
        l1i=CacheConfig("L1I", 1024, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, hit_latency=1),
        l2=CacheConfig("L2C", 4096, 4, hit_latency=4),
        llc=CacheConfig("LLC", 8192, 4, hit_latency=8),
    )


@pytest.fixture(scope="module")
def matrix():
    traces = {
        "zipf": synthetic.zipf_reuse(4000, num_blocks=400, seed=1),
        "thrash": synthetic.strided(4000, stride=64, elements=200),
    }
    return run_matrix(traces, ["lru", "srrip", "brrip"], config=tiny_config())


class TestRunMatrix:
    def test_all_cells_present(self, matrix):
        assert matrix.workloads == ["zipf", "thrash"]
        assert matrix.policies == ["lru", "srrip", "brrip"]
        for w in matrix.workloads:
            for p in matrix.policies:
                assert matrix.get(w, p).policy == p

    def test_missing_cell_raises(self, matrix):
        with pytest.raises(SimulationError, match="no result"):
            matrix.get("zipf", "hawkeye")

    def test_baseline_speedup_is_one(self, matrix):
        assert matrix.speedup("zipf", "lru") == pytest.approx(1.0)

    def test_geomean_speedup(self, matrix):
        g = matrix.geomean_speedup("srrip")
        speedups = matrix.speedups("srrip")
        assert min(speedups.values()) <= g <= max(speedups.values())

    def test_brrip_wins_thrash(self, matrix):
        assert matrix.speedup("thrash", "brrip") > 1.0

    def test_mpki_table(self, matrix):
        table = matrix.mpki_table("LLC")
        assert set(table) == {"zipf", "thrash"}
        assert table["thrash"]["brrip"] < table["thrash"]["lru"]

    def test_progress_callback(self):
        calls = []
        run_matrix(
            {"t": synthetic.streaming(200)},
            ["lru"],
            config=tiny_config(),
            progress=lambda w, p: calls.append((w, p)),
        )
        assert calls == [("t", "lru")]

    def test_list_of_traces_accepted(self):
        t = synthetic.streaming(200)
        m = run_matrix([t], ["lru"], config=tiny_config())
        assert m.workloads == [t.name]


class TestExperimentReports:
    def test_table1_lists_paper_machine(self):
        report = experiment_table1()
        rendered = report.render()
        assert "LLC" in rendered
        assert "11-way" in rendered
        assert "DDR4" in rendered

    def test_render_is_stable(self):
        report = ExperimentReport(
            experiment="X", headers=["a", "b"], rows=[["r", 1.0]]
        )
        assert report.render() == report.render()

    def test_float_format_override(self):
        report = ExperimentReport(experiment="X", headers=["a"], rows=[[1.23456]])
        assert "1.2346" in report.render(float_format="{:.4f}")


class TestExperimentCharts:
    def _report(self):
        return ExperimentReport(
            experiment="Demo",
            headers=["suite", "srrip", "ship"],
            rows=[["spec06", 1.03, 1.09], ["gap", 1.01, 1.02]],
        )

    def test_numeric_span_detection(self):
        assert self._report()._numeric_span() == 2

    def test_grouped_chart_contains_groups_and_bars(self):
        out = self._report().chart()
        assert "spec06:" in out and "gap:" in out
        assert "█" in out

    def test_baseline_chart_marks_baseline(self):
        out = self._report().chart(baseline=1.0)
        assert "|" in out
        assert "srrip" in out

    def test_no_numeric_columns_rejected(self):
        report = ExperimentReport(
            experiment="X", headers=["a", "b"], rows=[["p", "q"]]
        )
        with pytest.raises(ValueError, match="numeric"):
            report.chart()

    def test_mixed_label_columns(self):
        report = ExperimentReport(
            experiment="X",
            headers=["suite", "workload", "mpki"],
            rows=[["gap", "bfs", 40.0]],
        )
        out = report.chart()
        assert "gap bfs:" in out
