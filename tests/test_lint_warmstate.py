"""Warm-state-protocol pass tests: fixture trees and the live tree.

The pass must catch a registered policy that neither overrides both
checkpoint methods nor opts out via ``WARM_STATE_EXCLUDED``, flag
half-implemented protocols, and keep the exclusion list honest (stale
and unknown entries are warnings). On the live tree the static view
must agree with the runtime registry.
"""

import textwrap

from repro.lint import Severity, lint_paths, make_rule, warm_state_report
from repro.lint.analyzer import build_context, package_root

BASE = textwrap.dedent(
    """
    class ReplacementPolicy:
        def checkpoint_tables(self):
            return None

        def restore_tables(self, tables):
            raise NotImplementedError
    """
)


def make_tree(tmp_path, policies_src, excluded, registrations):
    """Minimal base + policies + registry fixture for the pass."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "base.py").write_text(BASE)
    (root / "policies.py").write_text(textwrap.dedent(policies_src))
    pairs = "\n".join(
        f'    ("{name}", {cls}),' for name, cls in registrations
    )
    (root / "registry.py").write_text(
        f"WARM_STATE_EXCLUDED = {excluded}\n\n"
        f"for _name, _factory in [\n{pairs}\n]:\n"
        "    register_policy(_name, _factory)\n"
    )
    return root


def findings_for(root):
    return lint_paths([root], [make_rule("warm-state-protocol")])


COMPLIANT = """
    class GoodPolicy(ReplacementPolicy):
        def checkpoint_tables(self):
            return {"table": list(self._table)}

        def restore_tables(self, tables):
            self._table[:] = tables["table"]

    class RecencyPolicy(ReplacementPolicy):
        pass
"""


class TestFixtureTrees:
    def test_compliant_tree_is_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            COMPLIANT,
            '("RecencyPolicy",)',
            [("good", "GoodPolicy"), ("recency", "RecencyPolicy")],
        )
        assert findings_for(root) == []

    def test_unimplemented_unexcluded_policy_is_an_error(self, tmp_path):
        root = make_tree(
            tmp_path,
            COMPLIANT,
            "()",
            [("good", "GoodPolicy"), ("recency", "RecencyPolicy")],
        )
        findings = findings_for(root)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == Severity.ERROR
        assert "RecencyPolicy" in finding.message
        assert "WARM_STATE_EXCLUDED" in finding.message
        assert finding.path == str(root / "policies.py")

    def test_half_implemented_protocol_is_an_error_even_when_excluded(
        self, tmp_path
    ):
        half = """
            class HalfPolicy(ReplacementPolicy):
                def checkpoint_tables(self):
                    return {}
        """
        root = make_tree(
            tmp_path, half, '("HalfPolicy",)', [("half", "HalfPolicy")]
        )
        findings = findings_for(root)
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "restore_tables" in findings[0].message

    def test_inherited_implementation_counts(self, tmp_path):
        src = COMPLIANT + """
    class ChildPolicy(GoodPolicy):
        pass
"""
        root = make_tree(tmp_path, src, "()", [("child", "ChildPolicy")])
        assert findings_for(root) == []

    def test_stale_exclusion_is_a_warning(self, tmp_path):
        root = make_tree(
            tmp_path,
            COMPLIANT,
            '("GoodPolicy", "RecencyPolicy")',
            [("good", "GoodPolicy"), ("recency", "RecencyPolicy")],
        )
        findings = findings_for(root)
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "stale" in findings[0].message
        assert "GoodPolicy" in findings[0].message

    def test_unknown_exclusion_is_a_warning(self, tmp_path):
        root = make_tree(
            tmp_path,
            COMPLIANT,
            '("RecencyPolicy", "GhostPolicy")',
            [("good", "GoodPolicy"), ("recency", "RecencyPolicy")],
        )
        findings = findings_for(root)
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "GhostPolicy" in findings[0].message

    def test_non_literal_exclusion_list_is_an_error(self, tmp_path):
        root = make_tree(
            tmp_path,
            COMPLIANT,
            "tuple(sorted(NAMES))",
            [("good", "GoodPolicy")],
        )
        findings = findings_for(root)
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "literal tuple" in findings[0].message

    def test_tree_without_registry_is_skipped(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "base.py").write_text(BASE)
        assert findings_for(root) == []


class TestLiveTree:
    def test_live_tree_is_clean(self):
        assert findings_for(package_root()) == []

    def test_report_matches_runtime_registry(self):
        from repro.policies.registry import (
            WARM_STATE_EXCLUDED,
            available_policies,
            make_policy,
        )

        ctx, parse_findings = build_context([package_root()])
        assert parse_findings == []
        report = warm_state_report(ctx)
        assert report is not None
        runtime_classes = {
            type(make_policy(name)).__name__ for name in available_policies()
        }
        assert set(report.registered) == runtime_classes
        assert tuple(report.excluded) == WARM_STATE_EXCLUDED
        # Implemented + excluded must partition the registered classes.
        assert set(report.implemented) | set(report.excluded) == runtime_classes
        assert set(report.implemented) & set(report.excluded) == set()

    def test_seven_paper_policies_implement_the_protocol(self):
        ctx, _ = build_context([package_root()])
        report = warm_state_report(ctx)
        for cls in (
            "SRRIPPolicy",
            "DRRIPPolicy",
            "DIPPolicy",
            "SHiPPolicy",
            "HawkeyePolicy",
            "GliderPolicy",
            "MPPPBPolicy",
        ):
            assert cls in report.implemented, cls
