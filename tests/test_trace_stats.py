"""Tests for trace-level statistics (the E2 characterization inputs)."""

import math

import pytest

from repro.trace.record import AccessKind
from repro.trace.stats import compute_trace_stats

from conftest import make_trace


class TestBasicCounts:
    def test_empty_trace(self):
        stats = compute_trace_stats(make_trace([]))
        assert stats.num_accesses == 0
        assert stats.num_pcs == 0

    def test_access_and_instruction_counts(self):
        stats = compute_trace_stats(make_trace([0, 64], gaps=[2, 3]))
        assert stats.num_accesses == 2
        assert stats.num_instructions == 5

    def test_apki(self):
        stats = compute_trace_stats(make_trace([0] * 10, gaps=10))
        assert stats.accesses_per_kilo_instruction == pytest.approx(100.0)


class TestMix:
    def test_kind_fractions(self):
        t = make_trace(
            [0, 64, 128, 192],
            kinds=[
                int(AccessKind.LOAD),
                int(AccessKind.LOAD),
                int(AccessKind.STORE),
                int(AccessKind.IFETCH),
            ],
        )
        stats = compute_trace_stats(t)
        assert stats.load_fraction == pytest.approx(0.5)
        assert stats.store_fraction == pytest.approx(0.25)
        assert stats.ifetch_fraction == pytest.approx(0.25)


class TestPCCharacterization:
    def test_single_pc_entropy_is_zero(self):
        stats = compute_trace_stats(make_trace([0, 64, 128], pcs=7))
        assert stats.num_pcs == 1
        assert stats.pc_entropy_bits == pytest.approx(0.0)

    def test_uniform_two_pcs_entropy_is_one_bit(self):
        stats = compute_trace_stats(make_trace([0, 64], pcs=[1, 2]))
        assert stats.pc_entropy_bits == pytest.approx(1.0)

    def test_blocks_per_pc(self):
        # PC 1 touches blocks {0, 1}; PC 2 touches block {2} twice.
        t = make_trace([0, 64, 128, 128], pcs=[1, 1, 2, 2])
        stats = compute_trace_stats(t)
        assert stats.blocks_per_pc == {1: 2, 2: 1}
        assert stats.mean_blocks_per_pc == pytest.approx(1.5)
        assert stats.max_blocks_per_pc == 2

    def test_footprint(self):
        stats = compute_trace_stats(make_trace([0, 8, 64]))
        assert stats.footprint_blocks == 2

    def test_gap_vs_spec_shape(self):
        """A GAP-like trace (1 PC, many blocks) vs a SPEC-like one."""
        gap_like = make_trace([i * 64 for i in range(100)], pcs=1)
        spec_like = make_trace(
            [(i % 10) * 64 for i in range(100)], pcs=[i % 10 + 1 for i in range(100)]
        )
        g = compute_trace_stats(gap_like)
        s = compute_trace_stats(spec_like)
        assert g.num_pcs < s.num_pcs
        assert g.mean_blocks_per_pc > s.mean_blocks_per_pc
