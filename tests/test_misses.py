"""Tests for 3C miss classification."""

import pytest

from repro.analysis.misses import classify_misses
from repro.errors import ConfigurationError
from repro.trace import synthetic

from conftest import make_trace


class TestBasicClassification:
    def test_all_distinct_is_all_compulsory(self):
        t = make_trace([i * 64 for i in range(50)])
        c = classify_misses(t, size_bytes=16 * 64, num_ways=4)
        assert c.compulsory == 50
        assert c.capacity == 0
        assert c.conflict == 0
        assert c.hits == 0

    def test_resident_set_is_all_hits_after_cold(self):
        blocks = list(range(8)) * 10
        t = make_trace([b * 64 for b in blocks])
        c = classify_misses(t, size_bytes=16 * 64, num_ways=16)
        assert c.compulsory == 8
        assert c.hits == 72
        assert c.capacity == 0
        assert c.conflict == 0

    def test_thrash_is_capacity(self):
        # 32-block cycle against a 16-block cache: every warm miss has
        # reuse distance 31 >= 16 -> capacity.
        blocks = list(range(32)) * 5
        t = make_trace([b * 64 for b in blocks])
        c = classify_misses(t, size_bytes=16 * 64, num_ways=16)
        assert c.compulsory == 32
        assert c.capacity == 32 * 4
        assert c.conflict == 0

    def test_conflict_misses_detected(self):
        # Two blocks in the same set of a direct-mapped cache, alternating:
        # fully-associative would hit, direct-mapped always conflicts.
        sets = 16
        t = make_trace([0, sets * 64] * 20)
        c = classify_misses(t, size_bytes=sets * 64, num_ways=1)
        assert c.conflict == 38  # all warm misses
        assert c.compulsory == 2

    def test_counts_are_consistent(self):
        t = synthetic.zipf_reuse(5000, num_blocks=600, seed=3)
        c = classify_misses(t, size_bytes=128 * 64, num_ways=8)
        assert c.hits + c.misses == c.accesses
        assert c.misses == c.compulsory + c.capacity + c.conflict


class TestDerivedMetrics:
    def test_fractions_sum_to_one(self):
        t = synthetic.zipf_reuse(4000, num_blocks=500, seed=4)
        c = classify_misses(t, size_bytes=64 * 64, num_ways=4)
        total = sum(c.fraction(k) for k in ("compulsory", "capacity", "conflict"))
        assert total == pytest.approx(1.0)

    def test_policy_addressable_fraction(self):
        t = make_trace([i * 64 for i in range(10)])
        c = classify_misses(t, size_bytes=16 * 64, num_ways=4)
        assert c.policy_addressable_fraction == 0.0  # all compulsory

    def test_invalid_geometry_rejected(self):
        t = make_trace([0])
        with pytest.raises(ConfigurationError):
            classify_misses(t, size_bytes=1000, num_ways=3)


class TestPaperShape:
    def test_gap_like_trace_has_no_addressable_misses_headroom(self):
        """Streaming (GAP-like worst case): all compulsory."""
        t = synthetic.streaming(3000)
        c = classify_misses(t, size_bytes=256 * 64, num_ways=8)
        assert c.policy_addressable_fraction == 0.0

    def test_spec_like_trace_has_addressable_misses(self):
        """A thrash cycle leaves capacity misses a policy could bypass."""
        t = synthetic.strided(5000, stride=64, elements=512)
        c = classify_misses(t, size_bytes=256 * 64, num_ways=8)
        assert c.policy_addressable_fraction > 0.5
