"""Shared fixtures: tiny machines, graphs and traces for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CacheConfig, CoreConfig, MachineConfig, small_test_machine
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, uniform_random
from repro.trace.record import AccessKind
from repro.trace.trace import Trace


@pytest.fixture
def small_machine() -> MachineConfig:
    """The 4/16/32 KB test machine — fast and policy-sensitive."""
    return small_test_machine()


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """An even smaller machine: 512 B L1s, 1 KB L2, 2 KB LLC."""
    return MachineConfig(
        core=CoreConfig(),
        l1i=CacheConfig("L1I", 512, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 512, 2, hit_latency=1),
        l2=CacheConfig("L2C", 1024, 4, hit_latency=4),
        llc=CacheConfig("LLC", 2048, 4, hit_latency=8),
    )


def make_trace(
    addrs: list[int],
    pcs: list[int] | int = 0x400000,
    kinds: list[int] | int = int(AccessKind.LOAD),
    gaps: list[int] | int = 1,
    name: str = "test",
) -> Trace:
    """Convenience trace constructor used across test modules."""
    n = len(addrs)
    if isinstance(pcs, int):
        pcs = [pcs] * n
    if isinstance(kinds, int):
        kinds = [kinds] * n
    if isinstance(gaps, int):
        gaps = [gaps] * n
    return Trace.from_arrays(
        np.array(addrs, dtype=np.uint64),
        np.array(pcs, dtype=np.uint64),
        np.array(kinds, dtype=np.uint8),
        np.array(gaps, dtype=np.uint32),
        name=name,
    )


@pytest.fixture
def block_trace():
    """Factory: trace touching the given block indices (64 B apart)."""

    def _make(blocks: list[int], **kwargs) -> Trace:
        return make_trace([b * 64 for b in blocks], **kwargs)

    return _make


@pytest.fixture
def small_graph():
    """A 64-vertex random graph, connected enough for kernel tests."""
    return uniform_random(64, avg_degree=6, seed=5)


@pytest.fixture
def path5():
    """Path graph 0-1-2-3-4."""
    return path_graph(5)


@pytest.fixture
def cycle6():
    """Cycle graph on 6 vertices."""
    return cycle_graph(6)


@pytest.fixture
def grid4x4():
    """A 4x4 mesh."""
    return grid_graph(4, 4)
