"""Tests for the sweep engine: caching, parallelism, isolation, resume."""

import json
import warnings

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.core.results import RESULT_SCHEMA_VERSION, SimulationResult
from repro.core.simulator import simulate
from repro.errors import SimulationError, UnknownPolicyError
from repro.harness.engine import (
    ResultCache,
    SweepEngine,
    cell_key,
    simulator_salt,
)
from repro.harness.runner import run_matrix
from repro.trace import synthetic


def tiny_config() -> MachineConfig:
    return MachineConfig(
        l1i=CacheConfig("L1I", 1024, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, hit_latency=1),
        l2=CacheConfig("L2C", 4096, 4, hit_latency=4),
        llc=CacheConfig("LLC", 8192, 4, hit_latency=8),
    )


@pytest.fixture(scope="module")
def traces():
    return {
        "zipf": synthetic.zipf_reuse(3000, num_blocks=300, seed=1),
        "stream": synthetic.strided(3000, stride=64, elements=150),
    }


@pytest.fixture(scope="module")
def gap_matrix_traces():
    """A small but real GAP workload set (2 kernels)."""
    from repro.gap.suite import gap_suite

    suite = gap_suite(scale=10, degree=8, max_accesses=3000)
    names = list(suite)[:2]
    return {name: suite[name] for name in names}


class TestTraceDigest:
    def test_same_content_same_digest(self):
        a = synthetic.zipf_reuse(500, num_blocks=50, seed=3)
        b = synthetic.zipf_reuse(500, num_blocks=50, seed=3)
        assert a.digest() == b.digest()

    def test_different_seed_different_digest(self):
        a = synthetic.zipf_reuse(500, num_blocks=50, seed=3)
        b = synthetic.zipf_reuse(500, num_blocks=50, seed=4)
        assert a.digest() != b.digest()

    def test_name_is_part_of_identity(self):
        a = synthetic.zipf_reuse(500, num_blocks=50, seed=3)
        b = a[:]
        b.name = "renamed"
        assert a.digest() != b.digest()


class TestResultJsonRoundTrip:
    def test_round_trip_is_bit_identical(self, traces):
        result = simulate(traces["zipf"], config=tiny_config(), llc_policy="srrip")
        doc = json.loads(json.dumps(result.to_json_dict()))
        assert SimulationResult.from_json_dict(doc) == result

    def test_schema_version_recorded(self, traces):
        result = simulate(traces["zipf"], config=tiny_config())
        assert result.to_json_dict()["schema_version"] == RESULT_SCHEMA_VERSION

    def test_schema_mismatch_rejected(self, traces):
        result = simulate(traces["zipf"], config=tiny_config())
        doc = result.to_json_dict()
        doc["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(SimulationError, match="schema_version"):
            SimulationResult.from_json_dict(doc)


class TestCellKey:
    def test_key_depends_on_every_component(self, traces):
        config = tiny_config()
        base = cell_key(traces["zipf"], "lru", config, 0.2, salt="s")
        assert cell_key(traces["stream"], "lru", config, 0.2, salt="s") != base
        assert cell_key(traces["zipf"], "srrip", config, 0.2, salt="s") != base
        assert cell_key(traces["zipf"], "lru", config, 0.3, salt="s") != base
        assert cell_key(traces["zipf"], "lru", config, 0.2, salt="t") != base
        bigger = config.with_llc_scale(2)
        assert cell_key(traces["zipf"], "lru", bigger, 0.2, salt="s") != base

    def test_key_is_stable_for_equal_inputs(self, traces):
        config_a, config_b = tiny_config(), tiny_config()
        assert cell_key(traces["zipf"], "lru", config_a, 0.2, salt="s") == cell_key(
            traces["zipf"], "lru", config_b, 0.2, salt="s"
        )

    def test_salt_defaults_to_simulator_salt(self, traces):
        config = tiny_config()
        assert cell_key(traces["zipf"], "lru", config, 0.2) == cell_key(
            traces["zipf"], "lru", config, 0.2, salt=simulator_salt()
        )


class TestCacheHitMissInvalidation:
    def test_second_run_is_all_hits(self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        first = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert first.stats.simulated == 4
        assert first.stats.hits == 0

        second = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert second.stats.hits == 4
        assert second.stats.simulated == 0, "zero cells may be re-simulated"
        assert second.matrix.results == first.matrix.results

    def test_config_change_invalidates(self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=tiny_config())
        outcome = engine.run(traces, ["lru"], config=tiny_config().with_llc_scale(2))
        assert outcome.stats.hits == 0
        assert outcome.stats.simulated == 2

    def test_salt_change_invalidates(self, tmp_path, traces):
        old = SweepEngine(cache_dir=tmp_path, jobs=1, salt="core-v1")
        old.run(traces, ["lru"], config=tiny_config())
        new = SweepEngine(cache_dir=tmp_path, jobs=1, salt="core-v2")
        outcome = new.run(traces, ["lru"], config=tiny_config())
        assert outcome.stats.hits == 0 and outcome.stats.simulated == 2

    def test_corrupt_entry_treated_as_miss(self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=tiny_config())
        for path in ResultCache(tmp_path)._entry_files():
            path.write_text("{not json", encoding="utf-8")
        outcome = engine.run(traces, ["lru"], config=tiny_config())
        assert outcome.stats.simulated == 2

    def test_cache_stats_clear_prune(self, tmp_path, traces):
        config = tiny_config()
        SweepEngine(cache_dir=tmp_path, jobs=1, salt="old").run(
            traces, ["lru"], config=config
        )
        SweepEngine(cache_dir=tmp_path, jobs=1, salt="new").run(
            traces, ["lru"], config=config
        )
        cache = ResultCache(tmp_path, salt="new")
        report = cache.stats()
        assert report.entries == 4
        assert report.by_salt == {"old": 2, "new": 2}
        assert report.stale_entries == 2
        assert cache.prune() == 2
        assert cache.stats().by_salt == {"new": 2}
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestParallelEqualsSerial:
    def test_gap_matrix_bit_identical(self, tmp_path, gap_matrix_traces):
        policies = ["lru", "srrip", "ship"]
        config = tiny_config()
        serial = SweepEngine(jobs=1).run(gap_matrix_traces, policies, config=config)
        parallel = SweepEngine(jobs=4).run(gap_matrix_traces, policies, config=config)
        assert parallel.stats.simulated == len(gap_matrix_traces) * len(policies)
        # Frozen-dataclass equality covers every counter and float metric.
        assert parallel.matrix.results == serial.matrix.results
        for workload in serial.matrix.workloads:
            for policy in policies:
                a = serial.matrix.get(workload, policy)
                b = parallel.matrix.get(workload, policy)
                assert a.ipc == b.ipc
                assert a.llc_mpki == b.llc_mpki

    def test_parallel_populates_cache_for_serial(self, tmp_path, traces):
        config = tiny_config()
        SweepEngine(cache_dir=tmp_path, jobs=4).run(traces, ["lru", "srrip"], config=config)
        outcome = SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, ["lru", "srrip"], config=config
        )
        assert outcome.stats.hits == 4 and outcome.stats.simulated == 0


class TestFailureIsolation:
    def test_isolated_cell_error_rest_completes(self, traces):
        engine = SweepEngine(jobs=1)
        outcome = engine.run(
            traces, ["lru", "no-such-policy"], config=tiny_config(),
            isolate_failures=True,
        )
        assert outcome.stats.errors == 2
        assert outcome.stats.simulated == 2
        for workload in traces:
            assert outcome.matrix.get(workload, "lru").policy == "lru"
            error = outcome.errors[(workload, "no-such-policy")]
            assert error.error_type == "UnknownPolicyError"
            assert "no-such-policy" in error.message
            assert error.render().startswith(workload)

    def test_isolated_parallel_failure(self, traces):
        outcome = SweepEngine(jobs=2).run(
            traces, ["lru", "no-such-policy"], config=tiny_config(),
            isolate_failures=True,
        )
        assert outcome.stats.errors == 2 and outcome.stats.simulated == 2

    def test_default_propagates_first_failure(self, traces):
        with pytest.raises(UnknownPolicyError):
            SweepEngine(jobs=1).run(
                traces, ["no-such-policy"], config=tiny_config()
            )

    def test_failed_cells_are_not_cached(self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(
            traces, ["lru", "no-such-policy"], config=tiny_config(),
            isolate_failures=True,
        )
        # Only the two successful lru cells were checkpointed.
        assert len(ResultCache(tmp_path)._entry_files()) == 2


class TestCheckpointResume:
    def test_partial_sweep_resumes_from_cache(self, tmp_path, traces):
        config = tiny_config()
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=config)  # first half of the matrix
        outcome = engine.run(traces, ["lru", "srrip"], config=config)
        assert outcome.stats.hits == 2
        assert outcome.stats.simulated == 2

    def test_crashed_sweep_keeps_finished_cells(self, tmp_path, traces):
        config = tiny_config()
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        # lru cells run (and checkpoint) before the bad policy crashes
        # the sweep: cells run in (workload, policy) order.
        with pytest.raises(UnknownPolicyError):
            engine.run(traces, ["lru", "no-such-policy"], config=config)
        outcome = engine.run(traces, ["lru"], config=config)
        assert outcome.stats.hits >= 1

    def test_progress_fires_for_cached_cells_too(self, tmp_path, traces):
        config = tiny_config()
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=config)
        calls = []
        engine.run(
            traces, ["lru"], config=config,
            progress=lambda w, p: calls.append((w, p)),
        )
        assert calls == [("zipf", "lru"), ("stream", "lru")]


class TestReadOnlyCacheDegradation:
    """An unusable cache location degrades to uncached, never raises.

    chmod tricks don't work under root, so the unwritable root is
    simulated by shadowing it with a regular file (NotADirectoryError,
    an OSError) and by monkeypatching shutil.rmtree for clear/prune.
    """

    @pytest.fixture
    def shadowed_root(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        return blocker / "cache"

    def test_store_warns_once_and_returns_none(self, shadowed_root, traces):
        result = simulate(traces["zipf"], config=tiny_config())
        cache = ResultCache(shadowed_root)
        with pytest.warns(RuntimeWarning, match="continuing without caching"):
            assert cache.store("ab" * 32, result) is None
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert cache.store("cd" * 32, result) is None
        assert not record, "the degradation warning fires only once"

    def test_load_on_unreadable_root_is_a_miss(self, shadowed_root):
        cache = ResultCache(shadowed_root)
        with pytest.warns(RuntimeWarning):
            assert cache.load("ab" * 32) is None

    def test_sweep_completes_uncached(self, shadowed_root, traces):
        engine = SweepEngine(cache_dir=shadowed_root, jobs=1)
        with pytest.warns(RuntimeWarning):
            outcome = engine.run(traces, ["lru"], config=tiny_config())
        assert outcome.stats.simulated == 2
        assert outcome.stats.errors == 0
        # Re-running re-simulates: nothing was (or could be) cached (and
        # the engine's cache stays disabled, so it does not warn again).
        again = engine.run(traces, ["lru"], config=tiny_config())
        assert again.stats.hits == 0 and again.stats.simulated == 2
        assert again.matrix.results == outcome.matrix.results

    def test_clear_on_readonly_dir_warns_not_raises(
        self, tmp_path, traces, monkeypatch
    ):
        SweepEngine(cache_dir=tmp_path, jobs=1).run(
            traces, ["lru"], config=tiny_config()
        )

        def deny(path, *args, **kwargs):
            raise PermissionError(13, "read-only file system", str(path))

        monkeypatch.setattr("shutil.rmtree", deny)
        cache = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning):
            assert cache.clear() == 0
        assert cache.stats().entries == 2, "entries survive the failed clear"

    def test_prune_on_readonly_dir_warns_not_raises(
        self, tmp_path, traces, monkeypatch
    ):
        SweepEngine(cache_dir=tmp_path, jobs=1, salt="old").run(
            traces, ["lru"], config=tiny_config()
        )

        def deny(path, *args, **kwargs):
            raise PermissionError(13, "read-only file system", str(path))

        monkeypatch.setattr("shutil.rmtree", deny)
        cache = ResultCache(tmp_path, salt="new")
        with pytest.warns(RuntimeWarning):
            assert cache.prune() == 0
        assert cache.stats().stale_entries == 2

    def test_cli_cache_prune_readonly_exits_zero(self, shadowed_root, capsys):
        from repro.__main__ import main

        assert main(["cache", "prune", "--cache-dir", str(shadowed_root)]) == 0
        assert "pruned 0 stale entries" in capsys.readouterr().out


class TestRunMatrixIntegration:
    def test_run_matrix_uses_env_engine(self, tmp_path, traces, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_JOBS", "1")
        first = run_matrix(traces, ["lru"], config=tiny_config())
        assert first.sweep_stats is not None
        assert first.sweep_stats.simulated == 2
        second = run_matrix(traces, ["lru"], config=tiny_config())
        assert second.sweep_stats.hits == 2
        assert second.sweep_stats.simulated == 0
        assert second.results == first.results

    def test_run_matrix_default_is_serial_uncached(self, traces, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        matrix = run_matrix(traces, ["lru"], config=tiny_config())
        assert matrix.sweep_stats.hits == 0
        assert matrix.sweep_stats.simulated == 2

    def test_run_matrix_explicit_engine(self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        run_matrix(traces, ["lru"], config=tiny_config(), engine=engine)
        matrix = run_matrix(traces, ["lru"], config=tiny_config(), engine=engine)
        assert matrix.sweep_stats.hits == 2


class TestSaltFreshness:
    """simulator_salt() must track source edits within one process.

    The old ``lru_cache(maxsize=1)`` froze the salt for the process
    lifetime, so a long-lived harness editing policies between sweeps
    would keep writing cache entries under the stale salt. The salt is
    now memoized on a (path, mtime_ns, size) fingerprint.
    """

    @pytest.fixture
    def salt_tree(self, tmp_path, monkeypatch):
        from repro.harness import engine

        root = tmp_path / "repro"
        (root / "core").mkdir(parents=True)
        (root / "core" / "simulator.py").write_text("X = 1\n")
        (root / "errors.py").write_text("class E(Exception): pass\n")
        monkeypatch.setattr(engine, "_salt_root", lambda: root)
        monkeypatch.setattr(
            engine, "SALT_SOURCE_PACKAGES", ("core", "errors.py")
        )
        engine.simulator_salt.cache_clear()
        yield root
        engine.simulator_salt.cache_clear()

    @staticmethod
    def _bump_mtime(path):
        import os

        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))

    def test_salt_is_memoized_while_sources_unchanged(self, salt_tree):
        from repro.harness import engine

        first = engine.simulator_salt()
        assert engine.simulator_salt() == first
        assert len(first) == 16

    def test_source_edit_mints_new_salt_same_process(self, salt_tree):
        from repro.harness import engine

        first = engine.simulator_salt()
        target = salt_tree / "core" / "simulator.py"
        target.write_text("X = 2\n")
        self._bump_mtime(target)
        second = engine.simulator_salt()
        assert second != first
        # And it settles: the new salt is itself stable.
        assert engine.simulator_salt() == second

    def test_new_source_file_changes_salt(self, salt_tree):
        from repro.harness import engine

        first = engine.simulator_salt()
        (salt_tree / "core" / "extra.py").write_text("Y = 3\n")
        assert engine.simulator_salt() != first

    def test_single_module_entry_edit_changes_salt(self, salt_tree):
        from repro.harness import engine

        first = engine.simulator_salt()
        target = salt_tree / "errors.py"
        target.write_text("class E(RuntimeError): pass\n")
        self._bump_mtime(target)
        assert engine.simulator_salt() != first

    def test_cache_clear_hook_exists_for_compat(self):
        # Callers that used the lru_cache attribute must keep working.
        simulator_salt.cache_clear()
        assert simulator_salt() == simulator_salt()

    def test_salt_source_files_lists_py_entries_once(self, salt_tree):
        from repro.harness import engine

        files = engine.salt_source_files(salt_tree)
        names = sorted(p.relative_to(salt_tree).as_posix() for p in files)
        assert names == ["core/simulator.py", "errors.py"]
