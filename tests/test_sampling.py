"""Representative-interval sampling: spec, clustering, plan, execution.

Sampling's contract is threefold — the spec round-trips losslessly (it
lives inside sweep cell keys), interval selection and recombination are
bit-identical across repeated runs and across serial/parallel sweeps,
and the simulate() facade refuses the combinations the executor cannot
honour. These tests pin all three on synthetic traces and the small
test machine so the whole module stays in tier-1 time.
"""

import json

import numpy as np
import pytest

from conftest import make_trace
from repro.core.config import small_test_machine
from repro.core.simulator import build_hierarchy, simulate
from repro.errors import ConfigurationError
from repro.harness.engine import SweepEngine, cell_key
from repro.sampling import (
    SamplingPlan,
    SamplingSpec,
    build_plan,
    kmeans,
    recombine,
    simulate_sampled,
    synthesize_warm_state,
)
from repro.telemetry import TelemetryConfig
from repro.trace import synthetic


def canonical(result) -> str:
    return json.dumps(result.to_json_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def machine():
    return small_test_machine()


@pytest.fixture(scope="module")
def phase_trace():
    """Two distinct phases: a tight loop, then a streaming scan."""
    loop = synthetic.zipf_reuse(4_000, num_blocks=64, seed=1)
    stream = synthetic.strided(4_000, stride=64, elements=2_000)
    addrs = np.concatenate([loop.addrs, stream.addrs + (1 << 30)])
    pcs = np.concatenate([loop.pcs, stream.pcs + (1 << 20)])
    kinds = np.concatenate([loop.kinds, stream.kinds])
    gaps = np.concatenate([loop.gaps, stream.gaps])
    from repro.trace.trace import Trace

    return Trace.from_arrays(addrs, pcs, kinds, gaps, name="two-phase")


class TestSamplingSpec:
    def test_json_roundtrip(self):
        spec = SamplingSpec(intervals=3, window_size=500, warm_windows=2, seed=7)
        assert SamplingSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_from_json_rejects_wrong_schema(self):
        doc = SamplingSpec().to_json_dict()
        doc["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version"):
            SamplingSpec.from_json_dict(doc)

    def test_from_string_default(self):
        assert SamplingSpec.from_string("default") == SamplingSpec()
        assert SamplingSpec.from_string("") == SamplingSpec()

    def test_from_string_pairs(self):
        spec = SamplingSpec.from_string("k=6,window=1000,warm=0,seed=3")
        assert spec == SamplingSpec(
            intervals=6, window_size=1_000, warm_windows=0, seed=3
        )

    def test_from_string_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError, match="bad sampling spec"):
            SamplingSpec.from_string("clusters=4")

    def test_from_string_rejects_non_integer(self):
        with pytest.raises(ConfigurationError, match="not an integer"):
            SamplingSpec.from_string("k=four")

    def test_from_string_synthesis_and_replay(self):
        spec = SamplingSpec.from_string("synthesis=replay,replay=2")
        assert spec == SamplingSpec(warm_synthesis="replay", replay_windows=2)
        assert SamplingSpec.from_string(
            "synthesis=checkpoint"
        ) == SamplingSpec(warm_synthesis="checkpoint")

    def test_from_string_rejects_unknown_synthesis(self):
        with pytest.raises(ConfigurationError, match="warm_synthesis"):
            SamplingSpec.from_string("synthesis=psychic")

    def test_json_roundtrip_carries_synthesis(self):
        spec = SamplingSpec(warm_synthesis="replay", replay_windows=3)
        assert SamplingSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_describe_names_the_strategy(self):
        assert "synthesis=recency" in SamplingSpec().describe()
        assert "replay(2w)" in SamplingSpec(
            warm_synthesis="replay", replay_windows=2
        ).describe()

    def test_effective_window_budgets_replay_windows(self):
        base = SamplingSpec()
        replay = SamplingSpec(warm_synthesis="replay", replay_windows=4)
        n = 1_000_000
        # Replay windows cost a functional pass each, so the auto window
        # shrinks to keep total touched work within the same budget.
        assert replay.effective_window(n) < base.effective_window(n)
        per_interval = replay.warm_windows + 1 + replay.replay_windows
        window = replay.effective_window(n)
        assert replay.intervals * per_interval * window <= n // replay.target_reduction

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"intervals": 0},
            {"window_size": -1},
            {"warm_windows": -1},
            {"target_reduction": 1},
            {"warm_synthesis": "psychic"},
            {"replay_windows": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingSpec(**kwargs)

    def test_effective_window_explicit_wins(self):
        assert SamplingSpec(window_size=777).effective_window(1_000_000) == 777

    def test_effective_window_auto_meets_reduction(self):
        spec = SamplingSpec(intervals=4, warm_windows=1, target_reduction=12)
        n = 1_000_000
        window = spec.effective_window(n)
        # k * (warm + 1) windows simulated must cost <= n / reduction.
        assert spec.intervals * (spec.warm_windows + 1) * window <= n // 12

    def test_effective_window_floor(self):
        assert SamplingSpec().effective_window(100) == 250


class TestKMeans:
    def test_deterministic_for_seed(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(40, 5))
        a = kmeans(vectors, 4, seed=9)
        b = kmeans(vectors, 4, seed=9)
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.centers, b.centers)

    def test_k_clamped_to_vector_count(self):
        vectors = np.random.default_rng(1).normal(size=(3, 4))
        assert kmeans(vectors, 10, seed=0).k == 3

    def test_separates_obvious_clusters(self):
        near = np.zeros((10, 2))
        far = np.full((10, 2), 100.0)
        result = kmeans(np.vstack([near, far]), 2, seed=0)
        assert len(set(result.assignments[:10])) == 1
        assert len(set(result.assignments[10:])) == 1
        assert result.assignments[0] != result.assignments[10]

    def test_duplicate_vectors_do_not_crash(self):
        vectors = np.ones((8, 3))
        result = kmeans(vectors, 4, seed=2)
        assert result.assignments.shape == (8,)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 4)), 2, seed=0)


class TestBuildPlan:
    def test_deterministic(self, phase_trace):
        spec = SamplingSpec(intervals=3, window_size=500)
        a = build_plan(phase_trace, spec)
        b = build_plan(phase_trace, spec)
        assert a == b

    def test_weights_cover_every_window(self, phase_trace):
        plan = build_plan(phase_trace, SamplingSpec(intervals=3, window_size=500))
        assert plan.total_weight == plan.num_windows

    def test_intervals_in_trace_order(self, phase_trace):
        plan = build_plan(phase_trace, SamplingSpec(intervals=4, window_size=500))
        starts = [interval.start for interval in plan.intervals]
        assert starts == sorted(starts)

    def test_warm_start_precedes_and_clamps(self, phase_trace):
        plan = build_plan(
            phase_trace, SamplingSpec(intervals=4, window_size=500, warm_windows=2)
        )
        for interval in plan.intervals:
            assert 0 <= interval.warm_start <= interval.start
            assert interval.start - interval.warm_start <= 2 * plan.window_size

    def test_seed_changes_selection_key(self, phase_trace):
        # Different seeds may or may not pick different intervals, but
        # the plan must carry the seed so cache keys distinguish them.
        a = build_plan(phase_trace, SamplingSpec(seed=0, window_size=500))
        b = build_plan(phase_trace, SamplingSpec(seed=1, window_size=500))
        assert a.spec != b.spec

    def test_empty_trace_rejected(self):
        from repro.trace.record import TRACE_DTYPE
        from repro.trace.trace import Trace

        empty = Trace(np.empty(0, dtype=TRACE_DTYPE))
        with pytest.raises(ConfigurationError, match="empty trace"):
            build_plan(empty, SamplingSpec())

    def test_bad_warmup_fraction_rejected(self, phase_trace):
        with pytest.raises(ConfigurationError, match="warmup_fraction"):
            build_plan(phase_trace, SamplingSpec(), warmup_fraction=1.0)

    def test_json_dict_reports_reduction(self, phase_trace):
        plan = build_plan(phase_trace, SamplingSpec(intervals=2, window_size=400))
        doc = plan.to_json_dict()
        assert doc["trace_accesses"] == len(phase_trace)
        assert doc["reduction"] == round(plan.reduction, 3)
        assert len(doc["intervals"]) == len(plan.intervals)


class TestWarmStateSynthesis:
    def test_prefix_blocks_land_in_cache(self, machine):
        trace = synthetic.zipf_reuse(2_000, num_blocks=50, seed=4)
        hierarchy = build_hierarchy(machine, "lru")
        fills = synthesize_warm_state(hierarchy, trace, 1_000)
        assert fills > 0
        # The most recently touched block of the prefix must be resident.
        blocks = trace.block_addrs(hierarchy.block_bits)[:1_000]
        assert hierarchy.llc.contains(int(blocks[-1]))

    def test_zero_boundary_is_noop(self, machine):
        trace = synthetic.zipf_reuse(500, num_blocks=20, seed=4)
        hierarchy = build_hierarchy(machine, "lru")
        assert synthesize_warm_state(hierarchy, trace, 0) == 0

    def test_statistics_untouched(self, machine):
        trace = synthetic.zipf_reuse(2_000, num_blocks=50, seed=4)
        hierarchy = build_hierarchy(machine, "lru")
        synthesize_warm_state(hierarchy, trace, 1_000)
        assert hierarchy.llc.stats.demand_accesses == 0
        assert hierarchy.llc.stats.demand_hits == 0


class TestSimulateSampled:
    def test_bit_identical_repeated_runs(self, machine, phase_trace):
        spec = SamplingSpec(intervals=3, window_size=500)
        a = simulate_sampled(phase_trace, config=machine, sampling=spec)
        b = simulate_sampled(phase_trace, config=machine, sampling=spec)
        assert canonical(a) == canonical(b)

    def test_info_carries_plan(self, machine, phase_trace):
        result = simulate_sampled(
            phase_trace, config=machine, sampling=SamplingSpec(window_size=500)
        )
        plan_doc = result.info["sampling_plan"]
        assert plan_doc["workload"] == phase_trace.name
        assert plan_doc["reduction"] > 1.0

    def test_tracks_full_run_mpki(self, machine, phase_trace):
        full = simulate(phase_trace, config=machine, llc_policy="lru")
        sampled = simulate_sampled(
            phase_trace,
            config=machine,
            llc_policy="lru",
            sampling=SamplingSpec(intervals=4, window_size=500),
        )
        # Tiny synthetic trace, so just a sanity band — the real budget
        # is enforced against BENCH_sampling.json by the CI gate.
        assert sampled.llc_mpki == pytest.approx(full.llc_mpki, rel=0.5)

    def test_facade_dispatches(self, machine, phase_trace):
        spec = SamplingSpec(intervals=2, window_size=500)
        via_facade = simulate(phase_trace, config=machine, sampling=spec)
        direct = simulate_sampled(phase_trace, config=machine, sampling=spec)
        assert canonical(via_facade) == canonical(direct)

    def test_facade_rejects_telemetry(self, machine, phase_trace):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            simulate(
                phase_trace,
                config=machine,
                sampling=SamplingSpec(),
                telemetry=TelemetryConfig(interval_instructions=600),
            )

    def test_facade_rejects_sanitize(self, machine, phase_trace):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            simulate(
                phase_trace, config=machine, sampling=SamplingSpec(), sanitize=True
            )

    def test_facade_rejects_prebuilt_hierarchy(self, machine, phase_trace):
        hierarchy = build_hierarchy(machine, "lru")
        with pytest.raises(ConfigurationError, match="hierarchy"):
            simulate(
                phase_trace,
                config=machine,
                sampling=SamplingSpec(),
                hierarchy=hierarchy,
            )

    def test_rejects_unknown_engine(self, machine, phase_trace):
        with pytest.raises(ConfigurationError, match="engine"):
            simulate_sampled(
                phase_trace, config=machine, sampling=SamplingSpec(), engine="warp"
            )

    def test_reference_engine_agrees(self, machine):
        trace = synthetic.zipf_reuse(3_000, num_blocks=80, seed=6)
        spec = SamplingSpec(intervals=2, window_size=400)
        fast = simulate_sampled(trace, config=machine, sampling=spec, engine="fast")
        ref = simulate_sampled(
            trace, config=machine, sampling=spec, engine="reference"
        )
        assert canonical(fast) == canonical(ref)


class TestRecombine:
    def test_single_interval_weight_is_identity_on_ratios(self, machine):
        trace = synthetic.zipf_reuse(1_500, num_blocks=60, seed=8)
        spec = SamplingSpec(intervals=1, window_size=400, warm_windows=0)
        result = simulate_sampled(trace, config=machine, sampling=spec)
        assert result.llc_mpki >= 0.0
        assert result.info["sampling_plan"]["spec"]["intervals"] == 1

    def test_rejects_empty_measurements(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="no measured intervals"):
            recombine([], "two-phase", "lru")


class TestSweepIntegration:
    @pytest.fixture(scope="class")
    def traces(self):
        return {
            "zipf": synthetic.zipf_reuse(3_000, num_blocks=300, seed=3),
            "stream": synthetic.strided(3_000, stride=64, elements=150),
        }

    def test_cell_key_distinguishes_sampling(self, machine, traces):
        trace = traces["zipf"]
        base = cell_key(trace, "lru", machine, 0.1)
        sampled = cell_key(trace, "lru", machine, 0.1, sampling=SamplingSpec())
        reseeded = cell_key(
            trace, "lru", machine, 0.1, sampling=SamplingSpec(seed=1)
        )
        resynthesized = cell_key(
            trace,
            "lru",
            machine,
            0.1,
            sampling=SamplingSpec(warm_synthesis="replay"),
        )
        assert len({base, sampled, reseeded, resynthesized}) == 4

    def test_serial_parallel_bit_identical(self, machine, traces):
        spec = SamplingSpec(intervals=2, window_size=400)
        serial = SweepEngine().run(
            traces, ["lru", "srrip"], config=machine, sampling=spec
        )
        parallel = SweepEngine(jobs=2).run(
            traces, ["lru", "srrip"], config=machine, sampling=spec
        )
        for workload, row in serial.matrix.results.items():
            for policy, result in row.items():
                assert canonical(result) == canonical(
                    parallel.matrix.results[workload][policy]
                ), (workload, policy)

    def test_sampled_cells_cache_separately(self, machine, traces, tmp_path):
        spec = SamplingSpec(intervals=2, window_size=400)
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=machine)
        outcome = engine.run(traces, ["lru"], config=machine, sampling=spec)
        # Full-run entries must not satisfy sampled cells.
        assert outcome.stats.hits == 0
        rerun = engine.run(traces, ["lru"], config=machine, sampling=spec)
        assert rerun.stats.hits == len(traces)

    def test_sampling_with_telemetry_rejected(self, machine, traces):
        with pytest.raises(ConfigurationError, match="cannot be combined"):
            SweepEngine().run(
                traces,
                ["lru"],
                config=machine,
                sampling=SamplingSpec(),
                telemetry=TelemetryConfig(interval_instructions=600),
            )

    def test_sampling_with_sanitize_rejected(self, machine, traces):
        with pytest.raises(ConfigurationError, match="cannot be combined"):
            SweepEngine().run(
                traces,
                ["lru"],
                config=machine,
                sampling=SamplingSpec(),
                sanitize=True,
            )

    def test_batched_engine_falls_back(self, machine, traces):
        spec = SamplingSpec(intervals=2, window_size=400)
        batched = SweepEngine().run(
            traces, ["lru"], config=machine, engine="batched", sampling=spec
        )
        plain = SweepEngine().run(
            traces, ["lru"], config=machine, sampling=spec
        )
        for workload in traces:
            assert canonical(batched.matrix.results[workload]["lru"]) == canonical(
                plain.matrix.results[workload]["lru"]
            )
