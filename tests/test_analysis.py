"""Tests for reuse-distance analysis, PC stats, aggregation and tables."""

import numpy as np
import pytest

from repro.analysis.pcstats import pc_profile
from repro.analysis.reuse import COLD, reuse_cdf, reuse_distances, reuse_profile
from repro.analysis.stats import geometric_mean, harmonic_mean, percent_delta
from repro.analysis.tables import format_table

from conftest import make_trace


class TestReuseDistances:
    def test_known_sequence(self):
        #  blocks:   a  b  a  c  b  a
        #  distance: -  -  1  -  2  2
        blocks = np.array([0, 1, 0, 2, 1, 0], dtype=np.uint64)
        d = reuse_distances(blocks)
        assert d.tolist() == [COLD, COLD, 1, COLD, 2, 2]

    def test_immediate_reuse_distance_zero(self):
        d = reuse_distances(np.array([5, 5, 5], dtype=np.uint64))
        assert d.tolist() == [COLD, 0, 0]

    def test_all_distinct(self):
        d = reuse_distances(np.arange(10, dtype=np.uint64))
        assert all(x == COLD for x in d)

    def test_empty(self):
        assert len(reuse_distances(np.empty(0, dtype=np.uint64))) == 0

    def test_matches_lru_simulation(self):
        """dist < C iff the access hits a fully-associative LRU of C blocks."""
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 30, size=500, dtype=np.uint64)
        d = reuse_distances(blocks)
        for capacity in (4, 8, 16):
            # Direct LRU simulation.
            from collections import OrderedDict

            lru: OrderedDict[int, None] = OrderedDict()
            hits = 0
            for b in blocks.tolist():
                if b in lru:
                    hits += 1
                    lru.move_to_end(b)
                else:
                    if len(lru) >= capacity:
                        lru.popitem(last=False)
                    lru[b] = None
            predicted = int(np.count_nonzero((d != COLD) & (d < capacity)))
            assert predicted == hits, f"capacity={capacity}"


class TestReuseProfile:
    def test_profile_fields(self):
        t = make_trace([0, 64, 0, 64, 0])
        profile, distances = reuse_profile(t)
        assert profile.num_accesses == 5
        assert profile.cold_fraction == pytest.approx(2 / 5)
        assert profile.median_distance == 1.0

    def test_cdf_monotone_in_capacity(self):
        t = make_trace([(i % 37) * 64 for i in range(500)])
        _, distances = reuse_profile(t)
        cdf = reuse_cdf(distances, [1, 8, 64, 512])
        values = list(cdf.values())
        assert values == sorted(values)

    def test_cdf_counts_cold_as_miss(self):
        t = make_trace([0, 64, 128])  # all cold
        _, distances = reuse_profile(t)
        assert reuse_cdf(distances, [100])[100] == 0.0


class TestPCProfile:
    def test_gap_shape_detected(self):
        t = make_trace([i * 64 for i in range(200)], pcs=1, name="gap-like")
        p = pc_profile(t)
        assert p.num_pcs == 1
        assert p.footprint_concentration == pytest.approx(1.0)

    def test_spec_shape_detected(self):
        addrs = [(i % 40) * 64 for i in range(400)]
        pcs = [(i % 40) // 5 for i in range(400)]
        p = pc_profile(make_trace(addrs, pcs=pcs, name="spec-like"))
        assert p.num_pcs == 8
        assert p.footprint_concentration < 0.2


class TestAggregation:
    def test_geomean_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_identity(self):
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 0.5]) == pytest.approx(2 / 3)

    def test_percent_delta(self):
        assert percent_delta(1.1, 1.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            percent_delta(1.0, 0.0)


class TestTables:
    def test_alignment_and_content(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.500" in out and "2.250" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table\n========")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        out = format_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in out
