"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import COLD, reuse_distances
from repro.analysis.stats import geometric_mean
from repro.mem.cache import Cache
from repro.policies.basic import LRUPolicy
from repro.policies.belady import NEVER, BeladyPolicy, compute_next_use
from repro.policies.registry import make_policy
from repro.trace.builder import TraceBuilder
from repro.trace.record import AccessKind
from repro.trace.trace import Trace

LOAD = AccessKind.LOAD

block_sequences = st.lists(
    st.integers(min_value=0, max_value=20), min_size=1, max_size=200
)


def run_policy(policy, blocks, ways=4, sets=1) -> int:
    cache = Cache("T", sets * ways * 64, ways, policy)
    hits = 0
    for b in blocks:
        if cache.access(b, b * 13 % 64, LOAD).hit:
            hits += 1
        else:
            cache.fill(b, b * 13 % 64, LOAD)
    return hits


class TestCacheInvariants:
    @given(block_sequences)
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = Cache("T", 4 * 64, 4, LRUPolicy())
        for b in blocks:
            if not cache.access(b, 0, LOAD).hit:
                cache.fill(b, 0, LOAD)
            assert cache.occupancy <= 4

    @given(block_sequences)
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, blocks):
        cache = Cache("T", 4 * 64, 4, LRUPolicy())
        for b in blocks:
            if not cache.access(b, 0, LOAD).hit:
                cache.fill(b, 0, LOAD)
        s = cache.stats
        assert s.demand_hits + s.demand_misses == s.demand_accesses == len(blocks)

    @given(block_sequences)
    @settings(max_examples=30, deadline=None)
    def test_resident_block_always_hits_next_access(self, blocks):
        cache = Cache("T", 4 * 64, 4, LRUPolicy())
        for b in blocks:
            was_resident = cache.contains(b)
            hit = cache.access(b, 0, LOAD).hit
            assert hit == was_resident
            if not hit:
                cache.fill(b, 0, LOAD)

    @given(
        block_sequences,
        st.sampled_from(["lru", "fifo", "nru", "srrip", "brrip", "ship", "random"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_policy_keeps_cache_consistent(self, blocks, policy_name):
        cache = Cache("T", 4 * 64, 4, make_policy(policy_name))
        for b in blocks:
            if not cache.access(b, 0, LOAD).hit:
                cache.fill(b, 0, LOAD)
        assert cache.occupancy <= 4
        resident = cache.resident_blocks()
        assert len(resident) == len(set(resident))  # no duplicate tags


class TestLRUStackProperty:
    @given(block_sequences)
    @settings(max_examples=30, deadline=None)
    def test_bigger_lru_never_hits_less(self, blocks):
        """The inclusion property of true LRU."""
        hits = [run_policy(LRUPolicy(), blocks, ways=w) for w in (1, 2, 4, 8)]
        assert hits == sorted(hits)


class TestBeladyOptimality:
    @given(block_sequences)
    @settings(max_examples=40, deadline=None)
    def test_opt_dominates_lru_on_any_sequence(self, blocks):
        arr = np.array(blocks, dtype=np.uint64)
        opt_hits = run_policy(BeladyPolicy(arr), blocks)
        lru_hits = run_policy(LRUPolicy(), blocks)
        assert opt_hits >= lru_hits

    @given(block_sequences)
    @settings(max_examples=40, deadline=None)
    def test_next_use_is_correct(self, blocks):
        arr = np.array(blocks, dtype=np.uint64)
        next_use = compute_next_use(arr)
        for i, b in enumerate(blocks):
            later = [j for j in range(i + 1, len(blocks)) if blocks[j] == b]
            expected = later[0] if later else NEVER
            assert next_use[i] == expected


class TestReuseDistanceProperties:
    @given(block_sequences)
    @settings(max_examples=30, deadline=None)
    def test_distance_bounded_by_footprint(self, blocks):
        d = reuse_distances(np.array(blocks, dtype=np.uint64))
        footprint = len(set(blocks))
        warm = d[d != COLD]
        assert all(0 <= x < footprint for x in warm)

    @given(block_sequences)
    @settings(max_examples=30, deadline=None)
    def test_cold_count_equals_distinct_blocks(self, blocks):
        d = reuse_distances(np.array(blocks, dtype=np.uint64))
        assert int(np.count_nonzero(d == COLD)) == len(set(blocks))

    @given(block_sequences)
    @settings(max_examples=20, deadline=None)
    def test_matches_fully_associative_lru_cache(self, blocks):
        """Cross-validation against the real cache model."""
        capacity = 4
        d = reuse_distances(np.array(blocks, dtype=np.uint64))
        predicted_hits = int(np.count_nonzero((d != COLD) & (d < capacity)))
        # Fully-associative = single set with `capacity` ways.
        actual_hits = run_policy(LRUPolicy(), blocks, ways=capacity)
        assert predicted_hits == actual_hits


class TestTraceProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=100),
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_builder_roundtrip(self, addrs, gaps):
        n = min(len(addrs), len(gaps))
        builder = TraceBuilder()
        for a, g in zip(addrs[:n], gaps[:n]):
            builder.tick(g - 1)
            builder.access(a, 0x400)
        trace = builder.build()
        assert trace.addrs.tolist() == addrs[:n]
        assert trace.gaps.tolist() == gaps[:n]
        assert trace.num_instructions == sum(gaps[:n])

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=2, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_slicing_concat_identity(self, addrs):
        from conftest import make_trace

        t = make_trace(addrs)
        k = len(addrs) // 2
        rejoined = Trace.concat([t[:k], t[k:]])
        assert rejoined.addrs.tolist() == t.addrs.tolist()

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_io_roundtrip(self, addrs):
        import tempfile
        from pathlib import Path

        from conftest import make_trace
        from repro.trace.io import load_trace, save_trace

        t = make_trace(addrs)
        with tempfile.TemporaryDirectory() as tmp:
            loaded = load_trace(save_trace(t, Path(tmp) / "t.npz"))
        assert loaded.addrs.tolist() == t.addrs.tolist()


class TestGeomeanProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_geomean_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_geomean_scales_linearly(self, values, k):
        import pytest

        scaled = geometric_mean([v * k for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * k, rel=1e-9)
