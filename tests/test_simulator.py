"""Integration tests for the simulation driver."""

import numpy as np
import pytest

from repro.core.simulator import build_hierarchy, simulate
from repro.errors import ConfigurationError
from repro.policies.basic import LRUPolicy
from repro.trace import synthetic

from conftest import make_trace


class TestBasicRuns:
    def test_returns_result_with_all_levels(self, small_machine):
        t = synthetic.working_set_loop(5000, set_bytes=8192)
        r = simulate(t, config=small_machine)
        assert set(r.levels) == {"L1I", "L1D", "L2C", "LLC"}
        assert r.policy == "lru"
        assert r.workload == t.name

    def test_instructions_match_measured_window(self, small_machine):
        t = synthetic.streaming(1000, stride=64)
        r = simulate(t, config=small_machine, warmup_fraction=0.0)
        assert r.instructions == t.num_instructions

    def test_warmup_excluded_from_stats(self, small_machine):
        t = synthetic.streaming(1000, stride=64)
        r = simulate(t, config=small_machine, warmup_fraction=0.5)
        assert r.levels["L1D"].demand_accesses == 500

    def test_invalid_warmup_rejected(self, small_machine):
        t = synthetic.streaming(10)
        with pytest.raises(ConfigurationError):
            simulate(t, config=small_machine, warmup_fraction=1.0)

    def test_policy_by_instance(self, small_machine):
        t = synthetic.streaming(100)
        r = simulate(t, config=small_machine, llc_policy=LRUPolicy())
        assert r.policy == "lru"

    def test_ipc_positive(self, small_machine):
        t = synthetic.working_set_loop(2000, set_bytes=4096)
        assert simulate(t, config=small_machine).ipc > 0


class TestDeterminism:
    def test_same_trace_same_result(self, small_machine):
        t = synthetic.zipf_reuse(5000, num_blocks=2048, seed=9)
        a = simulate(t, config=small_machine, llc_policy="drrip")
        b = simulate(t, config=small_machine, llc_policy="drrip")
        assert a.cycles == b.cycles
        assert a.levels["LLC"].demand_hits == b.levels["LLC"].demand_hits

    def test_random_policy_deterministic_via_seed(self, small_machine):
        t = synthetic.zipf_reuse(3000, num_blocks=2048, seed=9)
        a = simulate(t, config=small_machine, llc_policy="random")
        b = simulate(t, config=small_machine, llc_policy="random")
        assert a.cycles == b.cycles


class TestBehaviour:
    def test_resident_working_set_hits_l1(self, small_machine):
        t = synthetic.working_set_loop(8000, set_bytes=2048)  # fits 4 KB L1
        r = simulate(t, config=small_machine)
        assert r.levels["L1D"].demand_hit_rate > 0.9

    def test_llc_sized_set_misses_l2_hits_llc(self, small_machine):
        # 24 KB working set: above the 16 KB L2, inside the 32 KB LLC.
        t = synthetic.working_set_loop(20000, set_bytes=24 * 1024)
        r = simulate(t, config=small_machine)
        assert r.levels["L2C"].demand_hit_rate < 0.7
        assert r.levels["LLC"].demand_hit_rate > 0.5

    def test_streaming_misses_everywhere(self, small_machine):
        t = synthetic.streaming(20000, stride=64)
        r = simulate(t, config=small_machine, warmup_fraction=0.1)
        assert r.levels["LLC"].demand_hit_rate < 0.05
        assert r.l1d_miss_dram_fraction > 0.9

    def test_speedup_over(self, small_machine):
        t = synthetic.strided(20000, stride=64, elements=600)  # thrash LLC
        lru = simulate(t, config=small_machine, llc_policy="lru")
        brrip = simulate(t, config=small_machine, llc_policy="brrip")
        assert brrip.speedup_over(lru) > 1.0

    def test_speedup_requires_same_workload(self, small_machine):
        a = simulate(synthetic.streaming(100), config=small_machine)
        t2 = synthetic.streaming(100)
        t2.name = "other"
        b = simulate(t2, config=small_machine)
        with pytest.raises(ValueError, match="same workload"):
            a.speedup_over(b)


class TestResultDerived:
    def test_mpki_definition(self, small_machine):
        t = synthetic.streaming(1000, stride=64, gap=10)
        r = simulate(t, config=small_machine, warmup_fraction=0.0)
        level = r.levels["L1D"]
        assert r.mpki("L1D") == pytest.approx(
            1000.0 * level.demand_misses / r.instructions
        )

    def test_summary_contains_key_fields(self, small_machine):
        t = synthetic.streaming(500)
        s = simulate(t, config=small_machine).summary()
        assert "IPC" in s and "MPKI" in s

    def test_reused_hierarchy_override(self, small_machine):
        t = synthetic.streaming(500)
        h = build_hierarchy(small_machine, "srrip")
        r = simulate(t, config=small_machine, hierarchy=h)
        assert r.policy == "srrip"


class TestWarmupBoundaryTiming:
    """The warm-up→measurement boundary must be a continuous point in
    time for the memory system: the core restarts at cycle 0, so the
    DRAM bank clocks are rebased to the same origin. Regression tests
    for the bug where banks kept warm-up-era ``next_free`` timestamps
    and the first measured DRAM reads paid the entire warm-up duration
    as queue wait.
    """

    @staticmethod
    def _steady_trace():
        """A cyclic DRAM-heavy sweep: every measured window is identical."""
        from repro.trace.trace import Trace

        period = synthetic.strided(2000, stride=64, elements=1000)
        return Trace.concat([period] * 8, name="steady")

    def _measured_read_latencies(self, small_machine, trace, engine, warmup):
        """Instrument the DRAM to capture per-read latencies, split at
        the statistics-reset boundary (where ``rebase`` is invoked)."""
        h = build_hierarchy(small_machine, "lru")
        latencies = []
        boundary_marks = []
        real_read = h.dram.read
        real_rebase = h.dram.rebase

        def recording_read(addr, cycle):
            latency = real_read(addr, cycle)
            latencies.append(latency)
            return latency

        def marking_rebase(cycle):
            boundary_marks.append(len(latencies))
            real_rebase(cycle)

        h.dram.read = recording_read
        h.dram.rebase = marking_rebase
        simulate(trace, config=small_machine, hierarchy=h,
                 warmup_fraction=warmup, engine=engine)
        assert len(boundary_marks) == 1
        return latencies[boundary_marks[0]:]

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_first_measured_read_not_charged_warmup_wait(
        self, small_machine, engine
    ):
        trace = self._steady_trace()
        measured = self._measured_read_latencies(
            small_machine, trace, engine, warmup=0.5
        )
        assert measured, "steady trace must produce measured DRAM reads"
        dram = small_machine.dram
        # Worst legitimate case at the boundary: a row conflict behind
        # one still-draining warm-up transaction — service terms only,
        # never the ~10^5-cycle warm-up clock the bug charged here.
        bound = 2 * dram.row_conflict_latency
        assert measured[0] <= bound

    def test_measured_ipc_independent_of_warmup_length(self, small_machine):
        trace = self._steady_trace()
        ipcs = [
            simulate(trace, config=small_machine, warmup_fraction=wf).ipc
            for wf in (0.25, 0.5, 0.75)
        ]
        # Identical cyclic windows in steady state: any IPC spread beyond
        # noise means boundary effects leaked in (pre-fix: the spurious
        # queue-wait spike scaled with warm-up length, skewing short
        # windows by orders of magnitude more than this tolerance).
        assert max(ipcs) - min(ipcs) <= 0.005 * min(ipcs)

    def test_zero_warmup_measures_whole_trace(self, small_machine):
        trace = self._steady_trace()
        r = simulate(trace, config=small_machine, warmup_fraction=0.0)
        assert r.info["warmup_accesses"] == 0
        assert r.info["measured_accesses"] == len(trace)
        assert r.instructions == trace.num_instructions

    def test_near_full_warmup_still_measures_tail(self, small_machine):
        trace = self._steady_trace()
        r = simulate(trace, config=small_machine, warmup_fraction=0.999)
        expected_measured = len(trace) - int(len(trace) * 0.999)
        assert r.info["measured_accesses"] == expected_measured > 0
        assert r.instructions > 0
        assert r.ipc > 0
