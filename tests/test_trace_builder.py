"""Unit tests for TraceBuilder: gaps, chunking, limits."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.builder import TraceBuilder, _CHUNK
from repro.trace.record import AccessKind


class TestAccessPath:
    def test_single_access(self):
        b = TraceBuilder()
        b.access(64, 0x400, AccessKind.LOAD)
        t = b.build()
        assert len(t) == 1
        assert t[0].addr == 64
        assert t[0].gap == 1

    def test_tick_folds_into_next_gap(self):
        b = TraceBuilder()
        b.tick(5)
        b.access(64, 0)
        assert b.build()[0].gap == 6

    def test_tick_negative_raises(self):
        b = TraceBuilder()
        with pytest.raises(TraceError, match=">= 0"):
            b.tick(-1)

    def test_many_accesses_cross_chunk_boundary(self):
        b = TraceBuilder()
        for i in range(_CHUNK + 10):
            b.access(i * 64, 0)
        t = b.build()
        assert len(t) == _CHUNK + 10
        assert t.addrs[-1] == (_CHUNK + 9) * 64


class TestExtendPath:
    def test_extend_with_scalars(self):
        b = TraceBuilder()
        b.extend(np.array([0, 64], dtype=np.uint64), 7, AccessKind.STORE, gaps=3)
        t = b.build()
        assert t.pcs.tolist() == [7, 7]
        assert t.kinds.tolist() == [1, 1]
        assert t.gaps.tolist() == [3, 3]

    def test_extend_with_arrays(self):
        b = TraceBuilder()
        b.extend(
            np.array([0, 64], dtype=np.uint64),
            np.array([1, 2], dtype=np.uint64),
            np.array([0, 1], dtype=np.uint8),
            np.array([4, 5], dtype=np.uint32),
        )
        t = b.build()
        assert t.pcs.tolist() == [1, 2]
        assert t.gaps.tolist() == [4, 5]

    def test_pending_tick_folds_into_first_of_extend(self):
        b = TraceBuilder()
        b.tick(10)
        b.extend(np.array([0, 64], dtype=np.uint64), 0, gaps=2)
        assert b.build().gaps.tolist() == [12, 2]

    def test_extend_empty_is_noop(self):
        b = TraceBuilder()
        b.extend(np.empty(0, dtype=np.uint64), 0)
        assert len(b.build()) == 0

    def test_mixed_access_and_extend_preserves_order(self):
        b = TraceBuilder()
        b.access(0, 0)
        b.extend(np.array([64, 128], dtype=np.uint64), 0)
        b.access(192, 0)
        assert b.build().addrs.tolist() == [0, 64, 128, 192]

    def test_large_extend_goes_to_chunk_list(self):
        b = TraceBuilder()
        big = np.arange(_CHUNK + 5, dtype=np.uint64) * 64
        b.extend(big, 0)
        t = b.build()
        assert len(t) == _CHUNK + 5
        assert t.addrs[-1] == big[-1]

    def test_num_accesses_is_consistent(self):
        b = TraceBuilder()
        b.access(0, 0)
        b.extend(np.arange(100, dtype=np.uint64) * 64, 0)
        assert b.num_accesses == 101
        b.extend(np.arange(_CHUNK + 1, dtype=np.uint64), 0)
        assert b.num_accesses == 101 + _CHUNK + 1


class TestLimit:
    def test_limit_truncates_exactly(self):
        b = TraceBuilder(limit=3)
        b.extend(np.arange(10, dtype=np.uint64) * 64, 0)
        assert len(b.build()) == 3

    def test_full_flag(self):
        b = TraceBuilder(limit=2)
        assert not b.full
        b.access(0, 0)
        assert not b.full
        b.access(64, 0)
        assert b.full

    def test_appends_after_full_are_dropped(self):
        b = TraceBuilder(limit=1)
        b.access(0, 0)
        b.access(64, 0)
        b.extend(np.array([128], dtype=np.uint64), 0)
        t = b.build()
        assert len(t) == 1
        assert t.addrs.tolist() == [0]

    def test_invalid_limit_raises(self):
        with pytest.raises(TraceError, match="limit"):
            TraceBuilder(limit=0)

    def test_no_limit_never_full(self):
        b = TraceBuilder()
        b.extend(np.arange(1000, dtype=np.uint64), 0)
        assert not b.full


class TestMetadata:
    def test_name_and_info_propagate(self):
        b = TraceBuilder(name="xyz", info={"k": 1})
        b.access(0, 0)
        t = b.build()
        assert t.name == "xyz"
        assert t.info["k"] == 1
