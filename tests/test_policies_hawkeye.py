"""Behavioural tests for Hawkeye."""

from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.basic import LRUPolicy
from repro.policies.hawkeye import (
    COUNTER_MAX,
    FRIENDLY_THRESHOLD,
    HAWKEYE_RRPV_MAX,
    HawkeyePolicy,
    predictor_index,
)
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD
WB = AccessKind.WRITEBACK


def make_policy(sets=8, ways=4) -> HawkeyePolicy:
    p = HawkeyePolicy()
    p.initialize(sets, ways)
    return p


class TestPredictor:
    def test_starts_weakly_friendly(self):
        p = make_policy()
        assert p._predict_friendly(0x1234)

    def test_train_and_detrain_saturate(self):
        p = make_policy()
        idx = predictor_index(0x40)
        for _ in range(20):
            p._train(0x40, opt_hit=True)
        assert p._counters[idx] == COUNTER_MAX
        for _ in range(20):
            p._train(0x40, opt_hit=False)
        assert p._counters[idx] == 0
        assert not p._predict_friendly(0x40)

    def test_threshold(self):
        p = make_policy()
        idx = predictor_index(0x40)
        p._counters[idx] = FRIENDLY_THRESHOLD - 1
        assert not p._predict_friendly(0x40)
        p._counters[idx] = FRIENDLY_THRESHOLD
        assert p._predict_friendly(0x40)


class TestInsertion:
    def test_averse_pc_inserts_distant(self):
        p = make_policy()
        p._counters[predictor_index(0x40)] = 0
        p.on_fill(0, 0, PolicyAccess(1, 0x40, LOAD))
        assert p._rrpv[0][0] == HAWKEYE_RRPV_MAX
        assert p.stat_averse_fills == 1

    def test_friendly_pc_inserts_zero_and_ages_others(self):
        p = make_policy(ways=3)
        p._rrpv[0] = [2, 3, HAWKEYE_RRPV_MAX]
        p.on_fill(0, 0, PolicyAccess(1, 0x40, LOAD))
        assert p._rrpv[0][0] == 0
        assert p._rrpv[0][1] == 4  # aged
        assert p._rrpv[0][2] == HAWKEYE_RRPV_MAX  # averse lines stay at max

    def test_writeback_inserts_averse(self):
        p = make_policy()
        p.on_fill(0, 0, PolicyAccess(1, 0, WB))
        assert p._rrpv[0][0] == HAWKEYE_RRPV_MAX


class TestVictim:
    def test_prefers_averse_line(self):
        p = make_policy(ways=3)
        p._rrpv[0] = [0, HAWKEYE_RRPV_MAX, 2]
        assert p.find_victim(0, PolicyAccess(9, 0, LOAD), [1, 2, 3]) == 1

    def test_evicting_friendly_line_detrains_its_pc(self):
        p = make_policy(ways=2)
        pc = 0x80
        idx = predictor_index(pc)
        p._counters[idx] = COUNTER_MAX
        p.on_fill(0, 0, PolicyAccess(1, pc, LOAD))
        p.on_fill(0, 1, PolicyAccess(2, pc, LOAD))
        before = p._counters[idx]
        p.find_victim(0, PolicyAccess(3, 0x99, LOAD), [1, 2])
        assert p._counters[idx] == before - 1


class TestSampling:
    def test_reused_block_trains_positive(self):
        p = make_policy(sets=8, ways=4)
        sampled = p._sampler.sampled_sets[0]
        pc = 0x40
        idx = predictor_index(pc)
        p._counters[idx] = 3
        p.on_fill(sampled, 0, PolicyAccess(1, pc, LOAD))
        p.on_hit(sampled, 0, PolicyAccess(1, 0x41, LOAD))  # reuse trains pc
        assert p._counters[idx] == 4

    def test_writebacks_do_not_train(self):
        p = make_policy()
        sampled = p._sampler.sampled_sets[0]
        before = list(p._counters)
        p.on_fill(sampled, 0, PolicyAccess(1, 0, WB))
        p.on_fill(sampled, 1, PolicyAccess(1, 0, WB))
        assert p._counters == before

    def test_optgen_hit_rate_exposed(self):
        p = make_policy()
        sampled = p._sampler.sampled_sets[0]
        p.on_fill(sampled, 0, PolicyAccess(1, 0x40, LOAD))
        p.on_hit(sampled, 0, PolicyAccess(1, 0x40, LOAD))
        assert 0.0 <= p.optgen_hit_rate <= 1.0


class TestEndToEnd:
    def test_learns_scan_vs_resident(self):
        """With distinct PCs, Hawkeye must learn to evict scan fills."""
        ways = 4
        cache = Cache("T", 8 * ways * 64, ways, HawkeyePolicy())
        resident_pc, scan_pc = 0x100, 0x200
        resident = [s for s in range(8)]  # one hot block per set
        scan_block = 10_000
        hits_late = 0
        rounds = 400
        for r in range(rounds):
            for b in resident:
                result = cache.access(b, resident_pc, LOAD)
                if not result.hit:
                    cache.fill(b, resident_pc, LOAD)
                elif r > rounds // 2:
                    hits_late += 1
            for _ in range(ways):
                if not cache.access(scan_block, scan_pc, LOAD).hit:
                    cache.fill(scan_block, scan_pc, LOAD)
                scan_block += 8  # stay in-set-aligned across sets
        assert hits_late >= 0.9 * len(resident) * (rounds // 2 - 1)

    def test_beats_lru_on_pc_separable_workload(self):
        def run(policy_factory):
            ways = 4
            cache = Cache("T", 8 * ways * 64, ways, policy_factory())
            hits = 0
            scan_block = 10_000
            for _ in range(300):
                for b in range(8):
                    if cache.access(b, 0x100, LOAD).hit:
                        hits += 1
                    else:
                        cache.fill(b, 0x100, LOAD)
                for _ in range(ways + 1):
                    if not cache.access(scan_block, 0x200, LOAD).hit:
                        cache.fill(scan_block, 0x200, LOAD)
                    scan_block += 8
            return hits

        assert run(HawkeyePolicy) > run(LRUPolicy)
