"""The benchmark recorders' append guard.

``recording_guard.guard_append`` protects the checked-in trajectory
files (BENCH_sweep.json, BENCH_sampling.json) from two silent poisons:
entries recorded from a dirty tree (misattributed to a commit) and
duplicate (SHA, shape) entries (the latest-vs-previous gates would
compare a commit against itself). These tests exercise the guard
directly and through both recorders' shape definitions.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_BENCH = Path(__file__).parent.parent / "benchmarks"


def _load(name: str):
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, _BENCH / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    # Register before exec so the recorders' own `from recording_guard
    # import ...` resolves to the same module object the tests patch.
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


guard = _load("recording_guard")


@pytest.fixture
def clean_tree(monkeypatch):
    """Pretend the working tree is clean regardless of the real repo."""
    monkeypatch.setattr(guard, "working_tree_changes", lambda *a, **k: [])


@pytest.fixture
def dirty_tree(monkeypatch):
    monkeypatch.setattr(
        guard, "working_tree_changes", lambda *a, **k: [" M src/repro/x.py"]
    )


SHAPE_KEYS = ("smoke", "scale")
SHAPE = {"smoke": True, "scale": {"gap_window": 1000}}


def entry(sha: str, **overrides) -> dict:
    doc = {"git_sha": sha, **SHAPE, "value": 1.0}
    doc.update(overrides)
    return doc


class TestGuardAppend:
    def test_clean_tree_new_sha_passes(self, clean_tree, tmp_path):
        guard.guard_append(
            tmp_path / "t.json", [entry("aaa")], "bbb", SHAPE, SHAPE_KEYS
        )

    def test_dirty_tree_refused(self, dirty_tree, tmp_path):
        with pytest.raises(guard.RecordingGuardError, match="uncommitted"):
            guard.guard_append(
                tmp_path / "t.json", [], "bbb", SHAPE, SHAPE_KEYS
            )

    def test_duplicate_sha_same_shape_refused(self, clean_tree, tmp_path):
        with pytest.raises(guard.RecordingGuardError, match="already has"):
            guard.guard_append(
                tmp_path / "t.json", [entry("aaa")], "aaa", SHAPE, SHAPE_KEYS
            )

    def test_duplicate_sha_different_shape_allowed(self, clean_tree, tmp_path):
        # Same commit measured at another scale is a distinct data point.
        smoke_entry = entry("aaa")
        full_shape = {"smoke": False, "scale": {"gap_window": 100000}}
        guard.guard_append(
            tmp_path / "t.json", [smoke_entry], "aaa", full_shape, SHAPE_KEYS
        )

    def test_unknown_sha_skips_duplicate_check(self, clean_tree, tmp_path):
        guard.guard_append(
            tmp_path / "t.json",
            [entry("unknown")],
            "unknown",
            SHAPE,
            SHAPE_KEYS,
        )

    def test_force_downgrades_to_warning(self, dirty_tree, tmp_path, capsys):
        guard.guard_append(
            tmp_path / "t.json",
            [entry("aaa")],
            "aaa",
            SHAPE,
            SHAPE_KEYS,
            force=True,
        )
        captured = capsys.readouterr()
        assert "warning (--force)" in captured.err

    def test_all_reasons_reported_at_once(self, dirty_tree, tmp_path):
        with pytest.raises(guard.RecordingGuardError) as excinfo:
            guard.guard_append(
                tmp_path / "t.json", [entry("aaa")], "aaa", SHAPE, SHAPE_KEYS
            )
        message = str(excinfo.value)
        assert "uncommitted" in message
        assert "already has" in message
        assert "--force" in message

    def test_dirty_listing_truncated(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            guard,
            "working_tree_changes",
            lambda *a, **k: [f" M file{i}.py" for i in range(9)],
        )
        with pytest.raises(guard.RecordingGuardError, match=r"\(9 total\)"):
            guard.guard_append(tmp_path / "t.json", [], "bbb", SHAPE, SHAPE_KEYS)


class TestEntryShape:
    def test_reduces_to_shape_keys(self):
        doc = entry("aaa", extra="ignored")
        assert guard.entry_shape(doc, SHAPE_KEYS) == SHAPE

    def test_missing_keys_become_none(self):
        assert guard.entry_shape({}, SHAPE_KEYS) == {"smoke": None, "scale": None}


class TestWorkingTreeChanges:
    def test_returns_list_of_status_lines(self):
        # Runs against the real repo: just assert the contract shape.
        lines = guard.working_tree_changes()
        assert isinstance(lines, list)
        assert all(isinstance(line, str) for line in lines)

    def test_outside_git_returns_empty(self, tmp_path):
        assert guard.working_tree_changes(tmp_path) == []


class TestRecorderIntegration:
    """The recorders' main() must consult the guard before measuring."""

    def test_sampling_recorder_refuses_duplicate(self, monkeypatch, tmp_path):
        rec = _load("record_sampling")
        monkeypatch.setattr(rec, "_git_sha", lambda: "cafebabe" * 5)
        shape = {"smoke": True, "scale": {}, "spec": {}, "policies": [],
                 "suite_names": ["gap"]}
        monkeypatch.setattr(rec, "expected_shape", lambda suites: dict(shape))
        existing = {"git_sha": "cafebabe" * 5, **shape}
        output = tmp_path / "BENCH_sampling.json"
        output.write_text(
            json.dumps({"schema": 1, "entries": [existing]})
        )
        # A clean tree, so only the duplicate check can fire.
        monkeypatch.setattr(guard, "working_tree_changes", lambda *a, **k: [])
        code = rec.main(["--suites", "gap", "--output", str(output)])
        assert code == 2

    def test_trajectory_recorder_shape_ignores_jobs(self):
        rec = _load("record_trajectory")
        assert rec.expected_shape(1) == rec.expected_shape(8)
