"""Edge cases of windowed phase analysis and its sampling features.

The sampling layer builds its BBV-like vectors on top of
``repro.analysis.phases.profile_windows``, so the degenerate shapes a
real trace can take — shorter than one window, a ragged final window,
every access from one PC — must profile sanely, and the PC bucketing
must hash identically in every process (a parallel sweep's workers
would otherwise select different intervals than a serial run).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from conftest import make_trace
from repro.analysis.phases import detect_phases, profile_windows
from repro.errors import TraceError
from repro.sampling import pc_bucket_histogram, window_features
from repro.trace import synthetic

REPO_SRC = Path(__file__).parent.parent / "src"


class TestShortTraces:
    def test_trace_shorter_than_one_window(self):
        t = make_trace([i * 64 for i in range(10)])
        profiles = profile_windows(t, window_size=100)
        assert len(profiles) == 1
        assert profiles[0].start == 0
        assert profiles[0].footprint_blocks == 10
        assert profiles[0].new_block_fraction == 1.0

    def test_short_trace_still_yields_a_plan_window(self):
        t = make_trace([i * 64 for i in range(10)])
        vectors, spans = window_features(t, window_size=100)
        assert vectors.shape[0] == 1
        assert spans == [(0, 10)]

    def test_short_trace_with_warmup_keeps_all_windows(self):
        # Every window starts inside the warm-up region; the feature
        # builder must fall back to all windows, not return nothing.
        t = make_trace([i * 64 for i in range(10)])
        vectors, spans = window_features(t, window_size=100, first_start=5)
        assert vectors.shape[0] == 1

    def test_detect_phases_needs_three_windows(self):
        t = make_trace([i * 64 for i in range(50)])
        report = detect_phases(t, window_size=25)
        assert len(report.windows) == 2
        assert report.changes == ()
        assert report.num_phases == 1


class TestRaggedWindows:
    def test_window_not_dividing_trace(self):
        t = make_trace([i * 64 for i in range(25)])
        profiles = profile_windows(t, window_size=10)
        assert len(profiles) == 3
        assert [p.start for p in profiles] == [0, 10, 20]
        # Final ragged window covers 5 accesses, all cold blocks.
        assert profiles[-1].footprint_blocks == 5

    def test_ragged_window_fractions_use_actual_length(self):
        from repro.trace.record import AccessKind

        # 12 loads then 3 stores: the ragged final window is all-store.
        kinds = [int(AccessKind.LOAD)] * 12 + [int(AccessKind.STORE)] * 3
        t = make_trace([i * 64 for i in range(15)], kinds=kinds)
        profiles = profile_windows(t, window_size=12)
        assert profiles[0].store_fraction == 0.0
        assert profiles[1].store_fraction == 1.0

    def test_ragged_window_span_clamped(self):
        t = make_trace([i * 64 for i in range(25)])
        _, spans = window_features(t, window_size=10)
        assert spans[-1] == (20, 25)

    def test_window_size_must_be_positive(self):
        t = make_trace([0, 64])
        with pytest.raises(TraceError, match="window_size"):
            profile_windows(t, window_size=0)


class TestSinglePCWindows:
    def test_single_pc_trace_profiles(self):
        t = make_trace([i * 64 for i in range(40)], pcs=0x400123)
        profiles = profile_windows(t, window_size=10)
        assert all(p.num_pcs == 1 for p in profiles)

    def test_single_pc_histogram_is_one_hot(self):
        pcs = np.full(100, 0x400123, dtype=np.uint64)
        hist = pc_bucket_histogram(pcs)
        assert hist.sum() == pytest.approx(1.0)
        assert np.count_nonzero(hist) == 1

    def test_empty_pc_array_yields_zero_histogram(self):
        hist = pc_bucket_histogram(np.empty(0, dtype=np.uint64))
        assert hist.shape == (16,)
        assert hist.sum() == 0.0

    def test_single_pc_windows_cluster_together(self):
        # Identical one-PC windows produce identical feature vectors.
        t = make_trace([(i % 8) * 64 for i in range(60)], pcs=0x400123)
        vectors, _ = window_features(t, window_size=10)
        tail = vectors[1:]  # window 0 differs (cold new-block fraction)
        assert np.allclose(tail, tail[0])


class TestCrossProcessDeterminism:
    def test_histogram_identical_in_fresh_interpreter(self):
        """PC bucketing must not depend on per-process hash salting.

        Runs the same histogram in a subprocess with hash randomization
        forced to a different salt; a builtin-``hash``-based bucketing
        would disagree, the fixed multiplicative hash cannot.
        """
        pcs = (np.arange(500, dtype=np.uint64) * 4096) + 0x400000
        local = pc_bucket_histogram(pcs)
        script = (
            "import json\n"
            "import numpy as np\n"
            "from repro.sampling import pc_bucket_histogram\n"
            "pcs = (np.arange(500, dtype=np.uint64) * 4096) + 0x400000\n"
            "print(json.dumps(pc_bucket_histogram(pcs).tolist()))\n"
        )
        env = dict(os.environ)
        env.update({"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "12345"})
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        remote = np.array(json.loads(out.stdout))
        assert np.array_equal(local, remote)

    def test_window_hashes_stable_across_runs(self):
        t = synthetic.zipf_reuse(2_000, num_blocks=200, seed=5)
        a, spans_a = window_features(t, window_size=250)
        b, spans_b = window_features(t, window_size=250)
        assert np.array_equal(a, b)
        assert spans_a == spans_b
