"""Tests for the synthetic access-pattern primitives."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trace import synthetic


class TestStreaming:
    def test_addresses_are_sequential(self):
        t = synthetic.streaming(10, stride=64, base=1000)
        assert t.addrs.tolist() == [1000 + 64 * i for i in range(10)]

    def test_no_reuse(self):
        t = synthetic.streaming(100)
        assert t.footprint_blocks() == 100

    def test_store_fraction(self):
        t = synthetic.streaming(1000, store_fraction=0.5)
        stores = int(np.count_nonzero(t.kinds == 1))
        assert 300 < stores < 700

    def test_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            synthetic.streaming(0)


class TestStrided:
    def test_wraps_around(self):
        t = synthetic.strided(6, stride=64, elements=3, base=0)
        assert t.addrs.tolist() == [0, 64, 128, 0, 64, 128]

    def test_rejects_bad_params(self):
        with pytest.raises(WorkloadError):
            synthetic.strided(5, stride=0, elements=3)


class TestWorkingSet:
    def test_footprint_bounded(self):
        t = synthetic.working_set_loop(5000, set_bytes=64 * 32)
        assert t.footprint_blocks() <= 32

    def test_deterministic(self):
        a = synthetic.working_set_loop(100, set_bytes=4096, seed=3)
        b = synthetic.working_set_loop(100, set_bytes=4096, seed=3)
        assert np.array_equal(a.records, b.records)

    def test_different_seeds_differ(self):
        a = synthetic.working_set_loop(100, set_bytes=4096, seed=3)
        b = synthetic.working_set_loop(100, set_bytes=4096, seed=4)
        assert not np.array_equal(a.addrs, b.addrs)

    def test_pcs_correlate_with_regions(self):
        """Each PC only touches its slice of the working set."""
        t = synthetic.working_set_loop(5000, set_bytes=64 * 64, num_pcs=4)
        for pc in np.unique(t.pcs):
            blocks = np.unique(t.block_addrs()[t.pcs == pc])
            assert blocks.size <= 64 // 4 + 1

    def test_rejects_tiny_set(self):
        with pytest.raises(WorkloadError):
            synthetic.working_set_loop(10, set_bytes=32)


class TestPointerChase:
    def test_visits_form_a_cycle(self):
        t = synthetic.pointer_chase(50, num_nodes=10, node_bytes=64, base=0)
        blocks = t.block_addrs()
        # A permutation cycle revisits nodes with a fixed period.
        first_block = blocks[0]
        revisits = np.nonzero(blocks == first_block)[0]
        assert len(revisits) >= 2
        period = revisits[1] - revisits[0]
        assert np.array_equal(blocks[:period], blocks[period : 2 * period])

    def test_rejects_single_node(self):
        with pytest.raises(WorkloadError):
            synthetic.pointer_chase(10, num_nodes=1)


class TestZipf:
    def test_skew_concentrates_accesses(self):
        t = synthetic.zipf_reuse(20000, num_blocks=1000, skew=1.2)
        blocks, counts = np.unique(t.block_addrs(), return_counts=True)
        top_share = np.sort(counts)[-10:].sum() / counts.sum()
        assert top_share > 0.2  # top-10 blocks absorb a big share

    def test_rejects_bad_skew(self):
        with pytest.raises(WorkloadError):
            synthetic.zipf_reuse(10, num_blocks=10, skew=0)


class TestRandomUniform:
    def test_footprint_bounded(self):
        t = synthetic.random_uniform(1000, footprint_bytes=64 * 100)
        assert t.footprint_blocks() <= 100


class TestCombinators:
    def test_interleave_round_robin(self):
        a = synthetic.streaming(4, stride=64, base=0)
        b = synthetic.streaming(4, stride=64, base=1 << 20)
        mix = synthetic.interleave([a, b])
        assert mix.addrs.tolist()[:4] == [0, 1 << 20, 64, (1 << 20) + 64]

    def test_interleave_pattern(self):
        a = synthetic.streaming(4, stride=64, base=0)
        b = synthetic.streaming(2, stride=64, base=1 << 20)
        mix = synthetic.interleave([a, b], pattern=[2, 1])
        assert mix.addrs.tolist() == [0, 64, 1 << 20, 128, 192, (1 << 20) + 64]

    def test_interleave_rejects_empty(self):
        with pytest.raises(WorkloadError):
            synthetic.interleave([])

    def test_interleave_rejects_bad_pattern(self):
        a = synthetic.streaming(4)
        with pytest.raises(WorkloadError):
            synthetic.interleave([a], pattern=[0])

    def test_phased_concatenates(self):
        a = synthetic.streaming(3, base=0)
        b = synthetic.streaming(3, base=1 << 20)
        t = synthetic.phased([a, b])
        assert len(t) == 6
        assert t.addrs[0] == 0
        assert t.addrs[3] == 1 << 20
