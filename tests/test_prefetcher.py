"""Tests for the next-line and IP-stride prefetchers."""

import pytest

from repro.core.simulator import build_hierarchy
from repro.mem.prefetcher import IPStridePrefetcher, NextLinePrefetcher
from repro.trace.record import AccessKind


class TestNextLine:
    def test_prefetches_next_blocks(self):
        p = NextLinePrefetcher(degree=2)
        assert p.observe(10, 0, hit=False) == [11, 12]

    def test_degree_one_default(self):
        p = NextLinePrefetcher()
        assert p.observe(5, 0, hit=True) == [6]

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestIPStride:
    def test_needs_confidence_before_prefetching(self):
        p = IPStridePrefetcher(degree=1)
        pc = 0x400
        assert p.observe(10, pc, hit=False) == []
        assert p.observe(12, pc, hit=False) == []  # stride 2 observed once
        assert p.observe(14, pc, hit=False) == []  # confidence 1
        assert p.observe(16, pc, hit=False) == [18]  # confidence 2 -> fire

    def test_prefetch_follows_stride_and_degree(self):
        p = IPStridePrefetcher(degree=3)
        pc = 0x400
        for block in (0, 4, 8, 12):
            result = p.observe(block, pc, hit=False)
        assert result == [16, 20, 24]

    def test_stride_change_resets_confidence(self):
        p = IPStridePrefetcher(degree=1)
        pc = 0x400
        for block in (0, 2, 4, 6):
            p.observe(block, pc, hit=False)
        assert p.observe(11, pc, hit=False) == []  # stride broke
        assert p.observe(16, pc, hit=False) == []  # new stride seen once

    def test_zero_stride_never_fires(self):
        p = IPStridePrefetcher(degree=1)
        pc = 0x400
        for _ in range(10):
            result = p.observe(5, pc, hit=True)
        assert result == []

    def test_negative_stride_supported(self):
        p = IPStridePrefetcher(degree=1)
        pc = 0x400
        for block in (100, 98, 96, 94):
            result = p.observe(block, pc, hit=False)
        assert result == [92]

    def test_negative_prefetch_addresses_filtered(self):
        p = IPStridePrefetcher(degree=2)
        pc = 0x400
        for block in (6, 4, 2, 0):
            result = p.observe(block, pc, hit=False)
        # 0 - 2 = -2 would be negative; only non-negative blocks returned.
        assert all(b >= 0 for b in result)

    def test_distinct_pcs_tracked_separately(self):
        p = IPStridePrefetcher(degree=1)
        for block in (0, 4, 8, 12):
            p.observe(block, 0x400, hit=False)
        # A different PC has no learned stride yet.
        assert p.observe(100, 0x800, hit=False) == []

    def test_reset_clears_state(self):
        p = IPStridePrefetcher(degree=1)
        for block in (0, 4, 8, 12):
            p.observe(block, 0x400, hit=False)
        p.reset()
        assert p.observe(16, 0x400, hit=False) == []


class TestL2PrefetchAccounting:
    """The hierarchy must probe prefetch targets through
    ``access(..., PREFETCH)`` so the L2's prefetch_accesses *and*
    prefetch_hits counters both move. Regression test for the bug where
    already-resident targets were skipped without being counted, pinning
    prefetch_hits at zero forever."""

    @staticmethod
    def _hierarchy(small_machine):
        return build_hierarchy(
            small_machine, "lru", l2_prefetcher=NextLinePrefetcher()
        )

    def test_resident_prefetch_target_counts_as_hit(self, small_machine):
        h = self._hierarchy(small_machine)
        # Demand block 12: fills L2 with 12, prefetches 13 (not resident).
        h.access(12 * 64, 0x400, AccessKind.LOAD, 0)
        assert h.l2.stats.prefetch_accesses == 1
        assert h.l2.stats.prefetch_hits == 0
        # Demand block 11: prefetches 12 — resident in L2, so a hit.
        h.access(11 * 64, 0x400, AccessKind.LOAD, 100)
        assert h.l2.stats.prefetch_accesses == 2
        assert h.l2.stats.prefetch_hits == 1

    def test_sequential_stream_accumulates_prefetch_hits(self, small_machine):
        h = self._hierarchy(small_machine)
        # A descending stream makes every next-line target the previously
        # demanded (hence resident) block.
        for i, block in enumerate(range(64, 32, -1)):
            h.access(block * 64, 0x400, AccessKind.LOAD, i * 100)
        assert h.l2.stats.prefetch_hits > 0
        assert h.l2.stats.prefetch_accesses >= h.l2.stats.prefetch_hits

    def test_prefetch_probes_do_not_touch_demand_counters(self, small_machine):
        h = self._hierarchy(small_machine)
        h.access(12 * 64, 0x400, AccessKind.LOAD, 0)
        h.access(11 * 64, 0x400, AccessKind.LOAD, 100)
        # Two demand accesses reached the L2; the two prefetch probes
        # must not be folded into the demand counters.
        assert h.l2.stats.demand_accesses == 2
