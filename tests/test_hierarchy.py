"""Tests for the three-level hierarchy: propagation, fills, writebacks."""

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.core.simulator import build_hierarchy
from repro.mem.hierarchy import ServiceLevel
from repro.mem.prefetcher import NextLinePrefetcher
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD
STORE = AccessKind.STORE
IFETCH = AccessKind.IFETCH


def tiny_config() -> MachineConfig:
    return MachineConfig(
        l1i=CacheConfig("L1I", 512, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 512, 2, hit_latency=1),
        l2=CacheConfig("L2C", 1024, 4, hit_latency=4),
        llc=CacheConfig("LLC", 2048, 4, hit_latency=8),
    )


@pytest.fixture
def hierarchy():
    return build_hierarchy(tiny_config(), "lru")


class TestPropagation:
    def test_cold_access_reaches_dram(self, hierarchy):
        latency, level = hierarchy.access(0, 0, LOAD, cycle=0)
        assert level == ServiceLevel.DRAM
        assert latency > hierarchy.llc.hit_latency
        assert hierarchy.dram.stats.reads == 1

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0, 0, LOAD, 0)
        latency, level = hierarchy.access(0, 0, LOAD, 100)
        assert level == ServiceLevel.L1
        assert latency == hierarchy.l1d.hit_latency

    def test_fill_populates_all_levels(self, hierarchy):
        hierarchy.access(0, 0, LOAD, 0)
        assert hierarchy.l1d.contains(0)
        assert hierarchy.l2.contains(0)
        assert hierarchy.llc.contains(0)

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        # L1D: 512 B, 2-way, 4 sets. Blocks 0, 4, 8 map to set 0.
        hierarchy.access(0, 0, LOAD, 0)
        hierarchy.access(4 * 64, 0, LOAD, 0)
        hierarchy.access(8 * 64, 0, LOAD, 0)  # evicts 0 from L1D
        assert not hierarchy.l1d.contains(0)
        _, level = hierarchy.access(0, 0, LOAD, 0)
        assert level == ServiceLevel.L2

    def test_ifetch_uses_l1i(self, hierarchy):
        hierarchy.access(0, 0, IFETCH, 0)
        assert hierarchy.l1i.contains(0)
        assert not hierarchy.l1d.contains(0)
        assert hierarchy.l1i.stats.demand_accesses == 1
        assert hierarchy.l1d.stats.demand_accesses == 0

    def test_latency_accumulates_down_the_hierarchy(self, hierarchy):
        lat_dram, _ = hierarchy.access(0, 0, LOAD, 0)
        lat_l1, _ = hierarchy.access(0, 0, LOAD, 10_000)
        hierarchy.l1d.invalidate(0)
        lat_l2, _ = hierarchy.access(0, 0, LOAD, 20_000)
        assert lat_l1 < lat_l2 < lat_dram


class TestWritebacks:
    def test_dirty_l1_eviction_writes_back_to_l2(self, hierarchy):
        hierarchy.access(0, 0, STORE, 0)  # dirty in L1D
        hierarchy.access(4 * 64, 0, LOAD, 0)
        hierarchy.access(8 * 64, 0, LOAD, 0)  # evicts dirty 0
        assert hierarchy.l2.stats.writeback_accesses >= 1

    def test_dirty_llc_eviction_reaches_dram(self):
        h = build_hierarchy(tiny_config(), "lru")
        # Stream enough dirty blocks to force LLC dirty evictions.
        for i in range(200):
            h.access(i * 64, 0, STORE, i * 1000)
        assert h.dram.stats.writes > 0

    def test_writeback_hit_does_not_allocate_twice(self, hierarchy):
        hierarchy.access(0, 0, STORE, 0)
        occupancy = hierarchy.l2.occupancy
        # Writeback of a block already resident in L2 must not grow it.
        hierarchy._writeback_to_l2(0, 0)
        assert hierarchy.l2.occupancy == occupancy


class TestCrossLevelStats:
    def test_dram_fraction_counters(self, hierarchy):
        hierarchy.access(0, 0, LOAD, 0)  # miss -> DRAM
        hierarchy.access(0, 0, LOAD, 0)  # L1 hit
        assert hierarchy.stats.l1d_misses == 1
        assert hierarchy.stats.l1d_misses_to_dram == 1
        assert hierarchy.stats.l1d_miss_dram_fraction == 1.0

    def test_served_by_accounting(self, hierarchy):
        hierarchy.access(0, 0, LOAD, 0)
        hierarchy.access(0, 0, LOAD, 0)
        assert hierarchy.stats.served_by[ServiceLevel.DRAM] == 1
        assert hierarchy.stats.served_by[ServiceLevel.L1] == 1

    def test_ifetch_misses_not_counted_as_l1d(self, hierarchy):
        hierarchy.access(0, 0, IFETCH, 0)
        assert hierarchy.stats.l1d_misses == 0


class TestPrefetching:
    def test_next_line_prefetcher_fills_l2(self):
        h = build_hierarchy(tiny_config(), "lru", NextLinePrefetcher(degree=1))
        h.access(0, 0x40, LOAD, 0)
        assert h.l2.contains(1)  # block 1 prefetched into L2
        assert not h.l1d.contains(1)  # but not into L1

    def test_prefetches_counted_as_prefetch_kind(self):
        h = build_hierarchy(tiny_config(), "lru", NextLinePrefetcher(degree=1))
        h.access(0, 0x40, LOAD, 0)
        assert h.l2.stats.prefetch_accesses >= 1
        assert h.llc.stats.prefetch_accesses >= 1

    def test_prefetcher_reduces_demand_misses_on_stream(self):
        def misses(prefetcher):
            h = build_hierarchy(tiny_config(), "lru", prefetcher)
            for i in range(100):
                h.access(i * 64, 0x40, LOAD, i * 500)
            return h.l2.stats.demand_misses

        assert misses(NextLinePrefetcher(degree=2)) < misses(None)
