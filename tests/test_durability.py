"""Tests for sweep durability: the write-ahead run journal and resume,
graceful shutdown, resource governance (cache byte budget, memory
watchdog), failure-report persistence, and the chaos v2 plumbing."""

import errno
import json
import os
import time
import warnings

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.errors import (
    ConfigurationError,
    MemoryBudgetError,
    ResilienceError,
    SweepInterrupted,
)
from repro.harness.engine import ResultCache, SweepEngine, cell_key
from repro.resilience import FailureKind, RetryPolicy, classify_failure
from repro.resilience.durability import (
    CELL_FAILED,
    CELL_OK,
    EXIT_INTERRUPTED,
    JOURNAL_SUFFIX,
    RunJournal,
    ShutdownCoordinator,
    memory_guard,
    run_id_for,
    sweep_spec_doc,
    write_failure_report,
)
from repro.trace import synthetic

FAST_RETRY = dict(backoff_base=0.01, backoff_max=0.05)


def tiny_config() -> MachineConfig:
    return MachineConfig(
        l1i=CacheConfig("L1I", 1024, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, hit_latency=1),
        l2=CacheConfig("L2C", 4096, 4, hit_latency=4),
        llc=CacheConfig("LLC", 8192, 4, hit_latency=8),
    )


@pytest.fixture(scope="module")
def traces():
    return {
        "zipf": synthetic.zipf_reuse(2000, num_blocks=200, seed=1),
        "stream": synthetic.strided(2000, stride=64, elements=100),
    }


def spec_doc(salt: str = "s1") -> dict:
    return sweep_spec_doc(
        trace_digests={"zipf": "d1", "stream": "d2"},
        policies=["lru", "srrip"],
        config_doc={"llc": 8192},
        warmup_fraction=0.2,
        sanitize=False,
        telemetry_doc=None,
        sampling_doc=None,
        salt=salt,
    )


class TestRunId:
    def test_same_spec_same_id(self):
        assert run_id_for(spec_doc()) == run_id_for(spec_doc())

    def test_any_spec_change_changes_id(self):
        assert run_id_for(spec_doc("s1")) != run_id_for(spec_doc("s2"))
        other = spec_doc()
        other["policies"] = ["lru"]
        assert run_id_for(other) != run_id_for(spec_doc())


class TestRunJournal:
    def test_fresh_journal_roundtrip(self, tmp_path):
        journal = RunJournal.open_or_create(tmp_path, spec_doc(),
                                            context={"window": 5})
        assert journal is not None and not journal.resumed
        journal.record_cell("zipf", "lru", CELL_OK, key="k1")
        journal.record_cell("zipf", "srrip", CELL_FAILED,
                            classification="deterministic")
        journal.close(complete=True)

        parsed = RunJournal.load(journal.path)
        assert parsed.complete
        assert parsed.run_id == run_id_for(spec_doc())
        assert parsed.context == {"window": 5}
        assert parsed.completed_cells == {("zipf", "lru")}
        assert parsed.cells[("zipf", "srrip")]["status"] == CELL_FAILED

    def test_record_cell_is_idempotent_per_status(self, tmp_path):
        journal = RunJournal.open_or_create(tmp_path, spec_doc())
        journal.record_cell("zipf", "lru", CELL_OK)
        journal.record_cell("zipf", "lru", CELL_OK)
        journal.close(complete=False)
        lines = journal.path.read_text().splitlines()
        cell_lines = [l for l in lines if '"record": "cell"' in l]
        assert len(cell_lines) == 1

    def test_incomplete_journal_resumes_in_place(self, tmp_path):
        first = RunJournal.open_or_create(tmp_path, spec_doc())
        first.record_cell("zipf", "lru", CELL_OK)
        first.close(complete=False)

        second = RunJournal.open_or_create(tmp_path, spec_doc())
        assert second.resumed
        assert second.path == first.path
        assert second.completed_cells == {("zipf", "lru")}
        second.record_cell("stream", "lru", CELL_OK)
        second.close(complete=True)
        assert RunJournal.load(second.path).complete

    def test_complete_journal_rotates_aside(self, tmp_path):
        first = RunJournal.open_or_create(tmp_path, spec_doc())
        first.record_cell("zipf", "lru", CELL_OK)
        first.close(complete=True)

        second = RunJournal.open_or_create(tmp_path, spec_doc())
        assert not second.resumed
        assert second.completed_cells == set()
        rotated = first.path.with_name(first.path.name + ".1")
        assert rotated.exists()

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = RunJournal.open_or_create(tmp_path, spec_doc())
        journal.record_cell("zipf", "lru", CELL_OK)
        journal.record_cell("zipf", "srrip", CELL_OK)
        journal.close(complete=False)
        # Simulate kill -9 mid-append: half a JSON line at EOF.
        with journal.path.open("a", encoding="utf-8") as fh:
            fh.write('{"record": "cell", "workload": "str')

        parsed = RunJournal.load(journal.path)
        assert parsed.completed_cells == {("zipf", "lru"), ("zipf", "srrip")}
        assert not parsed.complete
        resumed = RunJournal.open_or_create(tmp_path, spec_doc())
        assert resumed.resumed
        assert len(resumed.completed_cells) == 2

    def test_find_names_known_runs(self, tmp_path):
        journal = RunJournal.open_or_create(tmp_path, spec_doc())
        journal.close(complete=False)
        assert RunJournal.find(tmp_path, journal.run_id) == journal.path
        with pytest.raises(ResilienceError, match=journal.run_id):
            RunJournal.find(tmp_path, "deadbeef00000000")

    def test_unwritable_dir_degrades_with_one_warning(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        with pytest.warns(RuntimeWarning, match="journal"):
            journal = RunJournal.open_or_create(blocked, spec_doc())
        assert journal is None

    def test_failure_report_path_is_sibling(self, tmp_path):
        journal = RunJournal.open_or_create(tmp_path, spec_doc())
        assert journal.failure_report_path.parent == journal.path.parent
        assert journal.failure_report_path.name == (
            f"{journal.run_id}-failures.json"
        )


class TestJournalledSweep:
    def test_run_journals_and_rotates_on_identical_rerun(
            self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path / "cache", jobs=1,
                             journal_dir=tmp_path / "journal")
        outcome = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert outcome.run_id is not None
        assert outcome.journal_path is not None
        assert outcome.journal_path.suffix == JOURNAL_SUFFIX
        assert RunJournal.load(outcome.journal_path).complete

        again = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert again.run_id == outcome.run_id
        assert again.stats.hits == 4 and again.stats.simulated == 0
        assert again.matrix.results == outcome.matrix.results

    def test_truncated_journal_resumes_at_first_incomplete_cell(
            self, tmp_path, traces):
        engine = SweepEngine(cache_dir=tmp_path / "cache", jobs=1,
                             journal_dir=tmp_path / "journal")
        outcome = engine.run(traces, ["lru", "srrip"], config=tiny_config())

        # Keep the header and the first two cell records: the state a
        # kill -9 after two cells leaves behind.
        lines = outcome.journal_path.read_text().splitlines()
        outcome.journal_path.write_text("\n".join(lines[:3]) + "\n")

        resumed = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert resumed.run_id == outcome.run_id
        assert resumed.stats.resumed == 2
        assert resumed.stats.simulated == 0  # rest restored from cache
        assert resumed.matrix.results == outcome.matrix.results
        assert RunJournal.load(outcome.journal_path).complete

    def test_journal_requires_cache(self, tmp_path, traces):
        engine = SweepEngine(cache_dir=None, jobs=1,
                             journal_dir=tmp_path / "journal")
        outcome = engine.run(traces, ["lru"], config=tiny_config())
        assert outcome.run_id is None
        assert not (tmp_path / "journal").exists()


class TestGracefulShutdown:
    def test_exit_code_is_bsd_tempfail(self):
        assert EXIT_INTERRUPTED == 75

    def test_request_sets_flag_and_name(self):
        shutdown = ShutdownCoordinator()
        assert not shutdown.requested
        shutdown.request("SIGTERM")
        assert shutdown.requested
        assert shutdown.signal_name == "SIGTERM"

    def test_serial_sweep_stops_and_raises_interrupted(
            self, tmp_path, traces, monkeypatch):
        import repro.harness.engine as eng

        shutdown = ShutdownCoordinator()
        real = eng._simulate_cell

        def first_cell_then_shutdown(*args, **kwargs):
            shutdown.request("SIGTERM")
            return real(*args, **kwargs)

        monkeypatch.setattr(eng, "_simulate_cell", first_cell_then_shutdown)
        engine = SweepEngine(cache_dir=tmp_path / "cache", jobs=1,
                             journal_dir=tmp_path / "journal")
        with pytest.raises(SweepInterrupted) as excinfo:
            engine.run(traces, ["lru", "srrip"], config=tiny_config(),
                       shutdown=shutdown)
        assert excinfo.value.run_id is not None
        assert "1/4" in str(excinfo.value)

        # The drained cell was journalled; resume completes the rest.
        monkeypatch.setattr(eng, "_simulate_cell", real)
        resumed = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert resumed.stats.resumed == 1
        assert len(resumed.matrix.results) == 2

    def test_parallel_sweep_drains_and_raises_interrupted(
            self, tmp_path):
        big = {
            "a": synthetic.zipf_reuse(30_000, num_blocks=500, seed=1),
            "b": synthetic.zipf_reuse(30_000, num_blocks=500, seed=2),
        }
        shutdown = ShutdownCoordinator()
        shutdown.request("SIGTERM")
        engine = SweepEngine(cache_dir=tmp_path / "cache", jobs=2,
                             journal_dir=tmp_path / "journal")
        with pytest.raises(SweepInterrupted):
            engine.run(big, ["lru", "srrip", "drrip"], config=tiny_config(),
                       shutdown=shutdown, drain_timeout=30.0)
        # Whatever drained is journalled and resumable.
        resumed = engine.run(big, ["lru", "srrip", "drrip"],
                             config=tiny_config())
        assert len(resumed.matrix.results) == 2
        assert resumed.stats.cells == 6

    def test_completed_sweep_ignores_late_request(self, tmp_path, traces):
        shutdown = ShutdownCoordinator()
        engine = SweepEngine(cache_dir=tmp_path / "cache", jobs=1,
                             journal_dir=tmp_path / "journal")
        outcome = engine.run(traces, ["lru"], config=tiny_config(),
                             shutdown=shutdown)
        shutdown.request("SIGTERM")
        assert len(outcome.matrix.results) == 2


class TestSerialInterruptRegression:
    def test_keyboard_interrupt_flushes_journal_and_report(
            self, tmp_path, traces, monkeypatch):
        """Ctrl-C mid-serial-sweep must leave resumable state behind."""
        import repro.harness.engine as eng

        real = eng._simulate_cell
        calls = {"n": 0}

        def interrupt_second_cell(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(eng, "_simulate_cell", interrupt_second_cell)
        engine = SweepEngine(cache_dir=tmp_path / "cache", jobs=1,
                             journal_dir=tmp_path / "journal")
        with pytest.raises(KeyboardInterrupt):
            engine.run(traces, ["lru", "srrip"], config=tiny_config(),
                       retry=RetryPolicy(max_attempts=2, **FAST_RETRY))

        journals = list((tmp_path / "journal").glob(f"*{JOURNAL_SUFFIX}"))
        assert len(journals) == 1
        parsed = RunJournal.load(journals[0])
        assert not parsed.complete
        assert len(parsed.completed_cells) == 1

        report_path = journals[0].with_name(
            f"{parsed.run_id}-failures.json")
        doc = json.loads(report_path.read_text())
        assert doc["schema"] == 1

        monkeypatch.setattr(eng, "_simulate_cell", real)
        resumed = engine.run(traces, ["lru", "srrip"], config=tiny_config())
        assert resumed.stats.resumed == 1
        assert len(resumed.matrix.results) == 2


class TestCacheByteBudget:
    def store_result(self, cache, engine, traces, policy):
        outcome = engine.run(traces, [policy], config=tiny_config())
        return outcome

    def test_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, max_bytes=0)

    def test_oldest_entry_evicted_past_budget(self, tmp_path, traces):
        cache = ResultCache(tmp_path, salt="s")
        engine = SweepEngine(jobs=1, salt="s")
        outcome = engine.run(traces, ["lru"], config=tiny_config())
        keys = {}
        for workload in traces:
            key = cell_key(traces[workload], "lru", tiny_config(), 0.2,
                           sanitize=False, salt="s")
            keys[workload] = key
            cache.store(key, outcome.matrix.results[workload]["lru"])
        entry_bytes = sum(
            p.stat().st_size for p in cache._entry_files()
        )
        # Budget fits one entry but not two; backdate "zipf" so it is
        # unambiguously the LRU victim.
        zipf_path = next(
            p for p in cache._entry_files() if keys["zipf"] in p.name
        )
        os.utime(zipf_path, (time.time() - 100, time.time() - 100))
        cache.max_bytes = entry_bytes - 1
        cache.store(keys["zipf"], outcome.matrix.results["zipf"]["lru"])
        # The just-written entry always survives its own enforcement.
        assert cache.load(keys["zipf"]) is not None
        assert cache.budget_evictions >= 1

    def test_hits_refresh_recency(self, tmp_path, traces):
        cache = ResultCache(tmp_path, salt="s", max_bytes=10**9)
        engine = SweepEngine(jobs=1, salt="s")
        outcome = engine.run(traces, ["lru"], config=tiny_config())
        key = cell_key(traces["zipf"], "lru", tiny_config(), 0.2,
                       sanitize=False, salt="s")
        cache.store(key, outcome.matrix.results["zipf"]["lru"])
        path = next(iter(cache._entry_files()))
        os.utime(path, (time.time() - 100, time.time() - 100))
        before = path.stat().st_mtime
        assert cache.load(key) is not None
        assert path.stat().st_mtime > before

    def test_engine_env_plumbs_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        engine = SweepEngine.from_env()
        assert engine.cache is not None
        assert engine.cache.max_bytes == 12345


class _FailingWriteCache(ResultCache):
    """Raises a real OSError from the store path after ``max_writes``."""

    def __init__(self, root, salt=None, max_writes=0,
                 error=errno.ENOSPC) -> None:
        super().__init__(root, salt=salt)
        self.writes = 0
        self.max_writes = max_writes
        self.error = error

    def _write_payload(self, tmp, text) -> None:
        if self.writes >= self.max_writes:
            raise OSError(self.error, os.strerror(self.error))
        self.writes += 1
        super()._write_payload(tmp, text)


class TestDiskDegradation:
    def test_enospc_degrades_uncached_with_one_warning(
            self, tmp_path, traces):
        baseline = SweepEngine(jobs=1).run(
            traces, ["lru", "srrip"], config=tiny_config())

        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.cache = _FailingWriteCache(tmp_path, salt=engine.salt,
                                          max_writes=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = engine.run(traces, ["lru", "srrip"],
                                 config=tiny_config())
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "unusable" in str(runtime[0].message)
        assert not outcome.errors
        assert outcome.matrix.results == baseline.matrix.results
        assert not list(tmp_path.rglob("*.tmp-*"))

    def test_read_only_cache_racing_parallel_sweep(self, tmp_path, traces):
        """The cache flips read-only mid-parallel-run: the sweep must
        finish uncached, warn exactly once, and stay bit-identical."""
        baseline = SweepEngine(jobs=1).run(
            traces, ["lru", "srrip", "drrip"], config=tiny_config())

        engine = SweepEngine(cache_dir=tmp_path, jobs=2)
        engine.cache = _FailingWriteCache(
            tmp_path, salt=engine.salt, max_writes=2, error=errno.EROFS)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = engine.run(traces, ["lru", "srrip", "drrip"],
                                 config=tiny_config())
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert not outcome.errors
        assert outcome.stats.simulated == 6
        assert outcome.matrix.results == baseline.matrix.results


class TestMemoryGovernance:
    def test_guard_off_is_passthrough(self):
        with memory_guard(None):
            pass

    def test_budget_breach_raises_structured_error(self):
        # Any live test process dwarfs a 1 MiB budget: the watchdog's
        # immediate first sample must trip before the body finishes.
        with pytest.raises(MemoryBudgetError, match="memory budget"):
            with memory_guard(1.0):
                time.sleep(2.0)

    def test_ample_budget_is_silent(self):
        with memory_guard(16384.0):
            time.sleep(0.01)

    def test_classification_ladder(self):
        assert classify_failure(MemoryBudgetError("x")) is FailureKind.TRANSIENT
        assert classify_failure(MemoryError()) is FailureKind.POISON

    def test_serial_sweep_classifies_budget_breach_poison(
            self, traces, monkeypatch):
        import repro.harness.engine as eng

        def blow_budget(*args, **kwargs):
            raise MemoryBudgetError("worker RSS 999 MiB exceeded")

        monkeypatch.setattr(eng, "_simulate_cell", blow_budget)
        outcome = SweepEngine(jobs=1).run(
            traces, ["lru"], config=tiny_config(), isolate_failures=True)
        assert len(outcome.errors) == 2
        assert all(e.classification == "poison"
                   for e in outcome.errors.values())


class TestVerifyReport:
    def test_previously_quarantined_fails_verify(self, tmp_path, traces):
        cache = ResultCache(tmp_path, salt="s")
        engine = SweepEngine(jobs=1, salt="s")
        outcome = engine.run(traces, ["lru"], config=tiny_config())
        for workload in traces:
            key = cell_key(traces[workload], "lru", tiny_config(), 0.2,
                           sanitize=False, salt="s")
            cache.store(key, outcome.matrix.results[workload]["lru"])

        entry = cache._entry_files()[0]
        entry.write_text(entry.read_text()[:40])

        first = cache.verify()
        assert first.quarantined == 1
        assert first.previously_quarantined == 0
        assert not first.clean

        # The corrupt entry is now in quarantine/: a later verify still
        # reports unclean until someone deals with the evidence.
        second = cache.verify()
        assert second.quarantined == 0
        assert second.previously_quarantined == 1
        assert not second.clean
        assert "previously quarantined" in second.render()

    def test_to_json_dict_shape(self, tmp_path):
        report = ResultCache(tmp_path, salt="s").verify()
        doc = report.to_json_dict()
        assert set(doc) == {"root", "checked", "ok", "quarantined",
                            "stale_format", "previously_quarantined",
                            "clean"}
        assert doc["clean"] is True


class TestFailureReportPersistence:
    def test_write_failure_report_atomic_and_versioned(self, tmp_path):
        target = tmp_path / "nested" / "report.json"
        from repro.resilience import FailureReport

        write_failure_report(target, FailureReport().to_json_dict())
        doc = json.loads(target.read_text())
        assert doc["schema"] == 1
        assert doc["clean"] is True
        assert not list(tmp_path.rglob("*.tmp-*"))

    def test_sweep_persists_report_to_explicit_path(
            self, tmp_path, traces):
        target = tmp_path / "failures.json"
        outcome = SweepEngine(jobs=1).run(
            traces, ["lru"], config=tiny_config(),
            retry=RetryPolicy(max_attempts=2, **FAST_RETRY),
            failure_report_path=target,
        )
        assert outcome.failure_report is not None
        doc = json.loads(target.read_text())
        assert doc["schema"] == 1
        assert doc["clean"] is True
