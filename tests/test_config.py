"""Tests for machine configuration validation and the paper's Table I."""

import pytest

from repro.core.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    cascade_lake,
    small_test_machine,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_paper_llc_geometry(self):
        llc = cascade_lake().llc
        assert llc.size_bytes == 1408 * 1024  # 1.375 MiB
        assert llc.num_ways == 11
        assert llc.num_sets == 2048

    def test_paper_l1_and_l2(self):
        cfg = cascade_lake()
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l1i.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 1024 * 1024

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("X", 1000, 3, hit_latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            CacheConfig("X", 3 * 64 * 2, 2, hit_latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("X", 4096, 4, hit_latency=-1)


class TestCoreConfig:
    def test_defaults_are_cascade_lake(self):
        core = CoreConfig()
        assert core.rob_size == 224
        assert core.dispatch_width == 4

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(dispatch_width=0)

    def test_rejects_zero_mshrs(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(max_outstanding_misses=0)


class TestMachineConfig:
    def test_llc_scaling(self):
        cfg = cascade_lake().with_llc_scale(2)
        assert cfg.llc.size_bytes == 2 * 1408 * 1024
        assert cfg.llc.num_ways == 11
        assert cfg.l2.size_bytes == cascade_lake().l2.size_bytes

    def test_llc_scale_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            cascade_lake().with_llc_scale(0)

    def test_describe_covers_all_components(self):
        rows = dict(cascade_lake().describe())
        assert set(rows) == {"Core", "L1I", "L1D", "L2", "LLC", "DRAM"}
        assert "11-way" in rows["LLC"]
        assert "2048 sets" in rows["LLC"]

    def test_small_test_machine_valid(self):
        cfg = small_test_machine()
        assert cfg.llc.num_sets > 0

    def test_configs_are_frozen(self):
        cfg = cascade_lake()
        with pytest.raises(AttributeError):
            cfg.llc = cfg.l2  # type: ignore[misc]
