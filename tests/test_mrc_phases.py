"""Tests for miss-ratio curves and phase analysis."""

import pytest

from repro.analysis.mrc import default_capacities, miss_ratio_curve
from repro.analysis.phases import detect_phases, profile_windows
from repro.errors import TraceError
from repro.trace import synthetic
from repro.trace.trace import Trace

from conftest import make_trace


class TestMissRatioCurve:
    def test_monotone_nonincreasing(self):
        t = synthetic.zipf_reuse(5000, num_blocks=600, seed=2)
        curve = miss_ratio_curve(t)
        ratios = list(curve.miss_ratios)
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_floor_is_cold_fraction(self):
        t = make_trace([(i % 10) * 64 for i in range(100)])
        curve = miss_ratio_curve(t)
        assert curve.miss_ratios[-1] == pytest.approx(curve.cold_fraction)
        assert curve.cold_fraction == pytest.approx(0.1)

    def test_working_set_cliff(self):
        """A tight loop over 16 blocks: miss ratio cliffs at capacity 16."""
        t = make_trace([(i % 16) * 64 for i in range(800)])
        curve = miss_ratio_curve(t, capacities=[1, 2, 4, 8, 16, 32])
        assert curve.miss_ratio_at(8) > 0.9
        assert curve.miss_ratio_at(16) < 0.05

    def test_knee_detection(self):
        t = make_trace([(i % 16) * 64 for i in range(800)])
        curve = miss_ratio_curve(t, capacities=[1, 2, 4, 8, 16, 32])
        assert curve.knee_capacity() == 16

    def test_streaming_has_no_knee(self):
        t = synthetic.streaming(2000)
        curve = miss_ratio_curve(t)
        assert curve.knee_capacity() is None  # flat at 1.0 everywhere

    def test_miss_ratio_at_below_smallest(self):
        t = make_trace([0, 0])
        curve = miss_ratio_curve(t, capacities=[4])
        assert curve.miss_ratio_at(1) == 1.0

    def test_default_capacities_cover_footprint(self):
        caps = default_capacities(100)
        assert caps[0] == 1
        assert caps[-1] >= 200

    def test_empty_trace(self):
        import numpy as np

        from repro.trace.record import TRACE_DTYPE

        curve = miss_ratio_curve(Trace(np.empty(0, dtype=TRACE_DTYPE)))
        assert all(r == 1.0 for r in curve.miss_ratios)

    def test_footprint_recorded(self):
        t = make_trace([0, 64, 128])
        assert miss_ratio_curve(t).footprint_blocks == 3


class TestWindowProfiles:
    def test_window_count(self):
        t = make_trace([i * 64 for i in range(100)])
        profiles = profile_windows(t, window_size=30)
        assert len(profiles) == 4  # 30+30+30+10

    def test_new_block_fraction_decays_on_loops(self):
        t = make_trace([(i % 20) * 64 for i in range(100)])
        profiles = profile_windows(t, window_size=25)
        assert profiles[0].new_block_fraction == 1.0
        assert profiles[-1].new_block_fraction == 0.0

    def test_store_fraction(self):
        t = make_trace([0, 64], kinds=[1, 0])
        (profile,) = profile_windows(t, window_size=10)
        assert profile.store_fraction == pytest.approx(0.5)

    def test_invalid_window(self):
        with pytest.raises(TraceError):
            profile_windows(make_trace([0]), 0)


class TestPhaseDetection:
    def test_stable_workload_has_one_phase(self):
        t = synthetic.working_set_loop(20_000, set_bytes=32 * 1024, seed=5)
        report = detect_phases(t, window_size=4000, threshold=0.5)
        assert report.num_phases == 1

    def test_phased_workload_detected(self):
        resident = synthetic.working_set_loop(10_000, set_bytes=16 * 1024, seed=6)
        stream = synthetic.streaming(10_000, base=0x9_0000_0000)
        t = synthetic.phased([resident, stream])
        report = detect_phases(t, window_size=2500, threshold=0.5)
        assert report.num_phases >= 2
        # The change lands at the resident->stream boundary (window 4).
        assert any(3 <= c <= 5 for c in report.changes)

    def test_single_window_trace(self):
        t = make_trace([0, 64])
        report = detect_phases(t, window_size=100)
        assert report.num_phases == 1
        assert report.changes == ()
