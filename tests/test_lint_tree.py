"""The shipped tree must be lint-clean, and the registry checks must bite.

These are the acceptance tests of the analyzer as a whole: the live
``repro`` package produces zero findings under the checked-in baseline
(and zero *errors* even without it), and the runtime
registry-consistency pass catches a broken registration when one is
injected.
"""

from pathlib import Path

from repro.lint import Severity, apply_baseline, lint_tree, parse_baseline
from repro.lint.findings import Finding, worst_severity
from repro.policies import registry
from repro.policies.basic import LRUPolicy

BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.txt"


class TestLiveTree:
    def test_package_is_lint_clean_under_baseline(self):
        findings = lint_tree()
        kept, suppressed = apply_baseline(
            findings, parse_baseline(BASELINE), BASELINE
        )
        assert [f.render() for f in kept] == []
        # Every checked-in suppression must still earn its keep.
        assert suppressed == len(findings)

    def test_package_has_no_errors_even_without_baseline(self):
        errors = [f for f in lint_tree() if f.severity == Severity.ERROR]
        assert [f.render() for f in errors] == []

    def test_rule_subset_also_clean(self):
        from repro.lint import make_rule

        findings = lint_tree(rules=[make_rule("pc-table-hygiene")])
        assert findings == []


class TestEngineCoverage:
    def test_engine_module_is_linted(self):
        from repro.lint.analyzer import build_context, package_root

        ctx, _ = build_context([package_root()])
        paths = {module.path for module in ctx.modules}
        assert any(p.endswith("harness/engine.py") for p in paths), (
            "the live-tree pass must cover the sweep engine"
        )

    def test_missing_salt_package_reported(self, monkeypatch):
        from repro.harness import engine

        monkeypatch.setattr(
            engine, "SALT_SOURCE_PACKAGES", (*engine.SALT_SOURCE_PACKAGES, "vanished")
        )
        findings = [f for f in lint_tree() if f.rule == "engine-salt-coverage"]
        assert len(findings) == 1
        assert "vanished" in findings[0].message
        assert findings[0].severity == Severity.ERROR
        assert findings[0].path.endswith("harness/engine.py")


class TestRegistryConsistency:
    def test_crashing_factory_reported(self, monkeypatch):
        def explode():
            raise RuntimeError("boom")

        monkeypatch.setitem(registry._REGISTRY, "broken", explode)
        findings = [f for f in lint_tree() if f.rule == "registry-consistency"]
        assert len(findings) == 1
        assert "fails to construct" in findings[0].message
        assert findings[0].severity == Severity.ERROR

    def test_name_mismatch_reported(self, monkeypatch):
        # LRUPolicy reports name="lru", not the key it is registered under.
        monkeypatch.setitem(registry._REGISTRY, "misnamed", LRUPolicy)
        findings = [f for f in lint_tree() if f.rule == "registry-consistency"]
        assert len(findings) == 1
        assert "misnamed" in findings[0].message
        assert "lru" in findings[0].message

    def test_non_policy_registration_reported(self, monkeypatch):
        monkeypatch.setitem(registry._REGISTRY, "impostor", dict)
        findings = [f for f in lint_tree() if f.rule == "registry-consistency"]
        assert len(findings) == 1
        assert "not a ReplacementPolicy" in findings[0].message

    def test_dynamically_defined_class_is_a_warning(self, monkeypatch):
        # A class built at runtime is invisible to the static pass.
        Hidden = type("HiddenPolicy", (LRUPolicy,), {"name": "hidden"})
        monkeypatch.setitem(registry._REGISTRY, "hidden", Hidden)
        findings = [f for f in lint_tree() if f.rule == "registry-consistency"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "HiddenPolicy" in findings[0].message


class TestFindings:
    def test_render_is_file_line_severity_rule(self):
        finding = Finding(
            rule="victim-return",
            severity=Severity.ERROR,
            path="src/repro/policies/x.py",
            line=12,
            message="find_victim returns None",
            hint="return a way index",
        )
        rendered = finding.render()
        assert rendered.startswith(
            "src/repro/policies/x.py:12: error [victim-return] "
        )
        assert "hint: return a way index" in rendered

    def test_severity_orders_by_badness(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR
        assert str(Severity.WARNING) == "warning"

    def test_worst_severity(self):
        note = Finding("r", Severity.NOTE, "p", 1, "m", "h")
        error = Finding("r", Severity.ERROR, "p", 2, "m", "h")
        assert worst_severity([]) is None
        assert worst_severity([note]) == Severity.NOTE
        assert worst_severity([note, error]) == Severity.ERROR
