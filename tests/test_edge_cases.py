"""Edge-case and robustness tests across the policy/cache surface."""

import numpy as np
import pytest

from repro.core.simulator import build_hierarchy, simulate
from repro.mem.cache import Cache
from repro.policies.base import BYPASS
from repro.policies.registry import available_policies, make_policy
from repro.trace import synthetic
from repro.trace.record import AccessKind

from conftest import make_trace
from test_hierarchy import tiny_config

LOAD = AccessKind.LOAD
WB = AccessKind.WRITEBACK
IFETCH = AccessKind.IFETCH

#: Policies that work at any associativity (plru needs powers of two).
GENERAL_POLICIES = [p for p in available_policies() if p != "plru"]


class TestDirectMapped:
    @pytest.mark.parametrize("policy", GENERAL_POLICIES)
    def test_direct_mapped_cache_works(self, policy):
        """ways=1: every conflict must evict the single resident line."""
        cache = Cache("DM", 8 * 64, 1, make_policy(policy))
        for block in [0, 8, 0, 8, 1, 9]:
            result = cache.access(block, 0x40, LOAD)
            if not result.hit:
                cache.fill(block, 0x40, LOAD)
        assert cache.occupancy <= 8

    @pytest.mark.parametrize("policy", GENERAL_POLICIES)
    def test_victim_in_range_when_full(self, policy):
        cache = Cache("DM", 2 * 64, 1, make_policy(policy))
        cache.fill(0, 0x40, LOAD)
        cache.fill(2, 0x40, LOAD)
        instance = cache.policy
        from repro.policies.base import PolicyAccess

        victim = instance.find_victim(0, PolicyAccess(4, 0x40, LOAD), [0])
        assert victim == 0 or (victim == BYPASS and instance.supports_bypass)


class TestWritebackRobustness:
    @pytest.mark.parametrize("policy", GENERAL_POLICIES)
    def test_policies_accept_pc_zero_writebacks(self, policy):
        """Writebacks carry pc=0; no policy may crash or corrupt state."""
        cache = Cache("T", 4 * 64, 4, make_policy(policy))
        for i in range(12):
            block = i % 6
            result = cache.access(block, 0, WB)
            if not result.hit:
                cache.fill(block, 0, WB)
        assert cache.occupancy <= 4

    @pytest.mark.parametrize("policy", GENERAL_POLICIES)
    def test_mixed_demand_and_writeback_stream(self, policy):
        cache = Cache("T", 4 * 64, 4, make_policy(policy))
        rng = np.random.default_rng(3)
        for _ in range(300):
            block = int(rng.integers(0, 12))
            kind = WB if rng.random() < 0.3 else LOAD
            pc = 0 if kind == WB else 0x400 + block * 4
            if not cache.access(block, pc, kind).hit:
                cache.fill(block, pc, kind)
        stats = cache.stats
        assert stats.demand_accesses + stats.writeback_accesses == 300


class TestIFetchPath:
    def test_trace_with_ifetches_simulates(self):
        n = 3000
        rng = np.random.default_rng(4)
        kinds = np.where(rng.random(n) < 0.3, IFETCH, LOAD).astype(np.uint8)
        addrs = (rng.integers(0, 512, n) * 64).astype(np.uint64)
        t = make_trace(addrs.tolist(), kinds=kinds.tolist())
        result = simulate(t, config=tiny_config())
        assert result.levels["L1I"].demand_accesses > 0
        assert result.levels["L1D"].demand_accesses > 0
        total = (
            result.levels["L1I"].demand_accesses
            + result.levels["L1D"].demand_accesses
        )
        assert total == int(n * 0.8)  # measurement window after warmup


class TestBypassingLLCInHierarchy:
    def test_mpppb_bypass_with_prefetcher(self):
        from repro.mem.prefetcher import NextLinePrefetcher

        h = build_hierarchy(tiny_config(), "mpppb", NextLinePrefetcher(degree=1))
        for i in range(500):
            h.access(i * 64, 0x40, LOAD, i * 100)
        # No crash, stats consistent.
        assert h.llc.stats.demand_accesses > 0

    def test_bypassed_writeback_reaches_dram(self):
        """If the LLC policy bypassed a writeback fill, data must not be
        lost — the hierarchy forwards it to DRAM."""
        from repro.policies.base import PolicyAccess, ReplacementPolicy

        class BypassAll(ReplacementPolicy):
            name = "bypass-all"
            supports_bypass = True

            def find_victim(self, set_index, access, tags):
                return BYPASS

            def on_hit(self, set_index, way, access):
                pass

            def on_fill(self, set_index, way, access):
                pass

        h = build_hierarchy(tiny_config(), BypassAll())
        # Fill the LLC set with invalid-way fills first is impossible
        # (bypass only applies when full); drive enough dirty traffic.
        writes_before = h.dram.stats.writes
        for i in range(200):
            h.access(i * 64, 0x40, AccessKind.STORE, i * 100)
        assert h.dram.stats.writes >= writes_before


class TestTinyTraces:
    @pytest.mark.parametrize("policy", ["lru", "srrip", "hawkeye", "mpppb"])
    def test_single_access_trace(self, policy):
        t = make_trace([64])
        result = simulate(t, config=tiny_config(), llc_policy=policy,
                          warmup_fraction=0.0)
        assert result.instructions == 1

    def test_two_access_trace_with_warmup(self):
        t = make_trace([64, 64])
        result = simulate(t, config=tiny_config(), warmup_fraction=0.5)
        assert result.levels["L1D"].demand_accesses == 1


class TestLargeAddresses:
    def test_full_64_bit_addresses(self):
        """Addresses near 2^63 must not overflow set indexing."""
        base = (1 << 62) + 0x123400
        t = make_trace([base + i * 64 for i in range(100)])
        result = simulate(t, config=tiny_config(), warmup_fraction=0.0)
        assert result.levels["L1D"].demand_accesses == 100
