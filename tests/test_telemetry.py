"""Tests for repro.telemetry: zero-overhead-off, bit-exact-on observability."""

import json

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.core.simulator import simulate
from repro.errors import ConfigurationError, SimulationError
from repro.harness.engine import SweepEngine, cell_key
from repro.harness.report import render_profile
from repro.telemetry import (
    MISS_CLASSES,
    PROFILE_SCHEMA_VERSION,
    MissClassifier,
    TelemetryConfig,
    TelemetryProfile,
)
from repro.trace import synthetic


def tiny_config() -> MachineConfig:
    return MachineConfig(
        l1i=CacheConfig("L1I", 1024, 2, hit_latency=1),
        l1d=CacheConfig("L1D", 1024, 2, hit_latency=1),
        l2=CacheConfig("L2C", 4096, 4, hit_latency=4),
        llc=CacheConfig("LLC", 8192, 4, hit_latency=8),
    )


@pytest.fixture(scope="module")
def zipf():
    return synthetic.zipf_reuse(6000, num_blocks=600, seed=7)


@pytest.fixture(scope="module")
def bfs_trace():
    """A real GAP BFS smoke trace (the acceptance workload)."""
    from repro.gap.suite import gap_suite

    suite = gap_suite(scale=10, degree=8, max_accesses=6000)
    name = next(n for n in suite if "bfs" in n)
    return suite[name]


ARMED = TelemetryConfig(interval_instructions=1000)


class TestConfig:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="interval_instructions"):
            TelemetryConfig(interval_instructions=0)
        with pytest.raises(ConfigurationError):
            TelemetryConfig(interval_instructions=-5)

    def test_json_dict_is_canonical(self):
        doc = TelemetryConfig().to_json_dict()
        assert doc == {
            "interval_instructions": 10_000,
            "per_set": True,
            "classify_misses": True,
            "policy_snapshots": True,
        }


class TestMissClassifier:
    def test_three_c_split(self):
        clf = MissClassifier(capacity_blocks=2)
        clf.observe(1, sa_hit=False)  # first touch -> compulsory
        clf.observe(2, sa_hit=False)  # compulsory
        clf.observe(3, sa_hit=False)  # compulsory; FA-LRU evicts 1
        clf.observe(1, sa_hit=False)  # seen, FA miss -> capacity
        clf.observe(3, sa_hit=False)  # seen, FA hit -> conflict
        clf.observe(3, sa_hit=True)  # SA hit -> not a miss at all
        counts = clf.counts()
        assert counts["compulsory"] == 3
        assert counts["capacity"] == 1
        assert counts["conflict"] == 1
        assert counts["demand_accesses"] == 6
        assert counts["demand_hits"] == 1

    def test_classes_sum_to_misses(self):
        clf = MissClassifier(capacity_blocks=4)
        for block in [5, 6, 5, 7, 8, 9, 5, 6, 10, 5]:
            clf.observe(block, sa_hit=False)
        counts = clf.counts()
        assert sum(counts[c] for c in MISS_CLASSES) == counts["demand_accesses"]


class TestDisabledPathIsUntouched:
    def test_no_info_key_when_off(self, zipf):
        result = simulate(zipf, config=tiny_config(), llc_policy="lru")
        assert "telemetry" not in result.info

    @pytest.mark.parametrize("policy", ["lru", "srrip", "ship", "hawkeye"])
    def test_armed_run_is_bit_identical(self, zipf, policy):
        """Telemetry is pure observation: every counter matches the plain run."""
        plain = simulate(zipf, config=tiny_config(), llc_policy=policy)
        armed = simulate(
            zipf, config=tiny_config(), llc_policy=policy, telemetry=ARMED
        )
        assert armed.instructions == plain.instructions
        assert armed.cycles == plain.cycles
        assert armed.dram_reads == plain.dram_reads
        assert armed.dram_writes == plain.dram_writes
        assert armed.levels == plain.levels


class TestBitExactTotals:
    def test_gap_bfs_profile_sums_to_aggregates(self, bfs_trace):
        """The acceptance criterion: interval series telescope bit-exactly."""
        result = simulate(
            bfs_trace, config=tiny_config(), llc_policy="ship", telemetry=ARMED
        )
        profile = TelemetryProfile.from_result(result)
        assert profile.validate_totals(result) == []
        assert profile.instructions == result.instructions
        assert profile.total_demand_misses("LLC") == result.levels["LLC"].demand_misses

    def test_validate_totals_reports_mismatch(self, zipf):
        result = simulate(
            zipf, config=tiny_config(), llc_policy="lru", telemetry=ARMED
        )
        profile = TelemetryProfile.from_result(result)
        doc = profile.to_json_dict()
        doc["intervals"][0]["instructions"] += 1
        broken = TelemetryProfile.from_json_dict(doc)
        problems = broken.validate_totals(result)
        assert any("instructions" in p for p in problems)

    def test_interval_stamps_are_monotonic(self, zipf):
        result = simulate(
            zipf, config=tiny_config(), llc_policy="lru", telemetry=ARMED
        )
        profile = TelemetryProfile.from_result(result)
        assert len(profile.intervals) >= 2
        stamps = [s.end_instructions for s in profile.intervals]
        assert stamps == sorted(stamps)
        assert len(stamps) == len(set(stamps)), "no empty duplicate intervals"
        for sample in profile.intervals:
            assert sample.instructions > 0

    def test_uninstrumented_result_refused(self, zipf):
        result = simulate(zipf, config=tiny_config(), llc_policy="lru")
        with pytest.raises(SimulationError, match="no telemetry"):
            TelemetryProfile.from_result(result)


class TestProfileRoundTrip:
    def test_json_round_trip_is_identity(self, zipf):
        result = simulate(
            zipf, config=tiny_config(), llc_policy="srrip", telemetry=ARMED
        )
        profile = TelemetryProfile.from_result(result)
        doc = json.loads(json.dumps(profile.to_json_dict()))
        assert TelemetryProfile.from_json_dict(doc) == profile

    def test_schema_version_recorded_and_checked(self, zipf):
        result = simulate(
            zipf, config=tiny_config(), llc_policy="lru", telemetry=ARMED
        )
        doc = TelemetryProfile.from_result(result).to_json_dict()
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        doc["schema_version"] = PROFILE_SCHEMA_VERSION + 1
        with pytest.raises(SimulationError, match="schema_version"):
            TelemetryProfile.from_json_dict(doc)

    def test_profile_rides_result_round_trip(self, zipf):
        from repro.core.results import SimulationResult

        result = simulate(
            zipf, config=tiny_config(), llc_policy="lru", telemetry=ARMED
        )
        revived = SimulationResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert TelemetryProfile.from_result(revived) == TelemetryProfile.from_result(
            result
        )


class TestConfigToggles:
    def test_per_set_off(self, zipf):
        config = TelemetryConfig(interval_instructions=1000, per_set=False)
        result = simulate(
            zipf, config=tiny_config(), llc_policy="lru", telemetry=config
        )
        profile = TelemetryProfile.from_result(result)
        assert profile.llc_evictions_per_set == []
        assert all(s.llc_occupancy is None for s in profile.intervals)
        assert profile.eviction_skew == 0.0
        assert profile.validate_totals(result) == []

    def test_classify_off(self, zipf):
        config = TelemetryConfig(interval_instructions=1000, classify_misses=False)
        result = simulate(
            zipf, config=tiny_config(), llc_policy="lru", telemetry=config
        )
        profile = TelemetryProfile.from_result(result)
        assert profile.miss_classes == {}

    def test_snapshots_off(self, zipf):
        config = TelemetryConfig(interval_instructions=1000, policy_snapshots=False)
        result = simulate(
            zipf, config=tiny_config(), llc_policy="ship", telemetry=config
        )
        assert TelemetryProfile.from_result(result).policy_snapshots == []

    def test_occupancy_histogram_shape(self, zipf):
        machine = tiny_config()
        result = simulate(zipf, config=machine, llc_policy="lru", telemetry=ARMED)
        profile = TelemetryProfile.from_result(result)
        line = 1 << machine.llc.block_bits
        num_sets = machine.llc.size_bytes // (machine.llc.num_ways * line)
        for sample in profile.intervals:
            assert len(sample.llc_occupancy) == machine.llc.num_ways + 1
            assert sum(sample.llc_occupancy) == num_sets


class TestPolicySnapshots:
    def _final_state(self, zipf, policy):
        result = simulate(
            zipf, config=tiny_config(), llc_policy=policy, telemetry=ARMED
        )
        profile = TelemetryProfile.from_result(result)
        assert profile.policy_snapshots, "boundaries should produce snapshots"
        return profile.policy_snapshots[-1].state

    def test_srrip_rrpv_histogram(self, zipf):
        from repro.policies.rrip import RRPV_MAX

        state = self._final_state(zipf, "srrip")
        hist = state["rrpv_histogram"]
        assert len(hist) == RRPV_MAX + 1
        assert sum(hist) > 0

    def test_ship_shct(self, zipf):
        state = self._final_state(zipf, "ship")
        assert "shct_histogram" in state
        assert 0.0 <= state["shct_dead_fraction"] <= 1.0

    def test_hawkeye_predictor(self, zipf):
        state = self._final_state(zipf, "hawkeye")
        assert "predictor_histogram" in state
        assert 0.0 <= state["predictor_friendly_fraction"] <= 1.0
        assert 0.0 <= state["optgen_hit_rate"] <= 1.0

    def test_drrip_duel(self, zipf):
        state = self._final_state(zipf, "drrip")
        assert state["winning_component"] in ("srrip", "brrip")
        assert 0 <= state["psel"] <= state["psel_max"]

    def test_default_snapshot_is_empty_dict(self):
        from repro.policies.base import ReplacementPolicy

        class Plain(ReplacementPolicy):
            name = "plain-test-only"

            def find_victim(self, set_index, access, tags):
                return 0

            def on_hit(self, set_index, way, access):
                pass

            def on_fill(self, set_index, way, access):
                pass

        assert Plain().snapshot_state() == {}

    def test_random_snapshot_pins_rng_position(self, zipf):
        state = self._final_state(zipf, "random")
        assert state["seed"] == 0xCACE
        assert isinstance(state["rng_state_word"], int)


class TestEngineIntegration:
    def test_parallel_equals_serial_with_telemetry(self, zipf):
        """The acceptance criterion: jobs=2 bit-identical to jobs=1, armed."""
        traces = {"zipf": zipf}
        policies = ["lru", "ship"]
        serial = SweepEngine(jobs=1).run(
            traces, policies, config=tiny_config(), telemetry=ARMED
        )
        parallel = SweepEngine(jobs=2).run(
            traces, policies, config=tiny_config(), telemetry=ARMED
        )
        assert parallel.matrix.results == serial.matrix.results
        for policy in policies:
            a = TelemetryProfile.from_result(serial.matrix.get("zipf", policy))
            b = TelemetryProfile.from_result(parallel.matrix.get("zipf", policy))
            assert a == b

    def test_cache_round_trip_preserves_profile(self, tmp_path, zipf):
        traces = {"zipf": zipf}
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        first = engine.run(traces, ["lru"], config=tiny_config(), telemetry=ARMED)
        second = engine.run(traces, ["lru"], config=tiny_config(), telemetry=ARMED)
        assert second.stats.hits == 1 and second.stats.simulated == 0
        assert TelemetryProfile.from_result(
            second.matrix.get("zipf", "lru")
        ) == TelemetryProfile.from_result(first.matrix.get("zipf", "lru"))

    def test_armed_and_plain_never_share_cache_cells(self, tmp_path, zipf):
        traces = {"zipf": zipf}
        engine = SweepEngine(cache_dir=tmp_path, jobs=1)
        engine.run(traces, ["lru"], config=tiny_config(), telemetry=ARMED)
        plain = engine.run(traces, ["lru"], config=tiny_config())
        assert plain.stats.hits == 0 and plain.stats.simulated == 1
        assert "telemetry" not in plain.matrix.get("zipf", "lru").info

    def test_cell_key_depends_on_telemetry_config(self, zipf):
        config = tiny_config()
        base = cell_key(zipf, "lru", config, 0.2, salt="s")
        armed = cell_key(zipf, "lru", config, 0.2, salt="s", telemetry=ARMED)
        other = cell_key(
            zipf, "lru", config, 0.2, salt="s",
            telemetry=TelemetryConfig(interval_instructions=2000),
        )
        assert len({base, armed, other}) == 3


class TestRenderProfile:
    @pytest.fixture(scope="class")
    def profile(self, zipf):
        result = simulate(
            zipf, config=tiny_config(), llc_policy="ship", telemetry=ARMED
        )
        return TelemetryProfile.from_result(result)

    def test_text_render(self, profile):
        text = render_profile(profile)
        assert profile.workload in text
        assert "ship" in text
        assert "MPKI" in text
        assert "compulsory" in text

    def test_markdown_render(self, profile):
        text = render_profile(profile, markdown=True)
        assert text.startswith("### Telemetry:")
        assert "| " in text  # pipe table

    def test_downsampling_bounds_table(self, profile):
        text = render_profile(profile, max_intervals=3)
        # Only the downsampled interval rows appear, never the full series.
        data_rows = [
            line for line in text.splitlines() if line.strip().startswith("1")
        ]
        assert len(data_rows) <= len(profile.intervals)


class TestProfileCli:
    def test_profile_command_writes_json_and_renders(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "profile.json"
        code = main([
            "profile", "gap.bfs.10", "ship",
            "--window", "20000", "--interval", "4000",
            "--json", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        profile = TelemetryProfile.from_json_dict(doc)
        assert profile.policy == "ship"
        captured = capsys.readouterr()
        assert "MPKI" in captured.out

    def test_profile_command_markdown(self, capsys):
        from repro.__main__ import main

        code = main([
            "profile", "gap.bfs.10", "lru",
            "--window", "20000", "--interval", "4000", "--markdown",
        ])
        assert code == 0
        assert "### Telemetry:" in capsys.readouterr().out
