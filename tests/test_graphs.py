"""Tests for the CSR graph substrate, generators and loaders."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    grid_graph,
    kronecker,
    load_csr,
    load_edge_list,
    path_graph,
    save_csr,
    save_edge_list,
    star_graph,
    uniform_random,
)


class TestCSRConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [0, 2], [1, 2]]))
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.neighbors_of(0).tolist() == [1, 2]

    def test_symmetrize(self):
        g = CSRGraph.from_edges(2, np.array([[0, 1]]), symmetrize=True)
        assert g.num_edges == 2
        assert g.neighbors_of(1).tolist() == [0]
        assert g.is_symmetric()

    def test_dedup_removes_duplicates_and_self_loops(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [0, 1], [1, 1]]))
        assert g.num_edges == 1

    def test_dedup_disabled_keeps_duplicates(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [0, 1]]), dedup=False)
        assert g.num_edges == 2

    def test_adjacency_lists_sorted(self):
        g = CSRGraph.from_edges(4, np.array([[0, 3], [0, 1], [0, 2]]))
        assert g.neighbors_of(0).tolist() == [1, 2, 3]

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, np.array([[0, 5]]))

    def test_rejects_inconsistent_offsets(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, np.empty((0, 2)))
        assert g.num_edges == 0
        assert g.out_degree(0) == 0


class TestQueries:
    def test_degrees(self):
        g = path_graph(4)
        assert g.out_degrees().tolist() == [1, 2, 2, 1]
        assert g.out_degree(1) == 2

    def test_edges_roundtrip(self):
        g = cycle_graph(5)
        g2 = CSRGraph.from_edges(5, g.edges(), dedup=False)
        assert np.array_equal(g.offsets, g2.offsets)
        assert np.array_equal(g.neighbors, g2.neighbors)

    def test_transpose_of_directed(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        t = g.transpose()
        assert t.neighbors_of(1).tolist() == [0]
        assert t.neighbors_of(2).tolist() == [1]

    def test_transpose_of_symmetric_is_same(self):
        g = cycle_graph(6)
        t = g.transpose()
        assert np.array_equal(g.offsets, t.offsets)
        assert np.array_equal(g.neighbors, t.neighbors)

    def test_average_degree(self):
        assert complete_graph(4).average_degree == pytest.approx(3.0)


class TestDeterministicGenerators:
    def test_path(self):
        g = path_graph(3)
        assert g.num_edges == 4  # 2 undirected edges

    def test_cycle(self):
        g = cycle_graph(4)
        assert all(g.out_degree(v) == 2 for v in range(4))

    def test_star(self):
        g = star_graph(5)
        assert g.out_degree(0) == 5
        assert all(g.out_degree(v) == 1 for v in range(1, 6))

    def test_complete(self):
        g = complete_graph(5)
        assert all(g.out_degree(v) == 4 for v in range(5))

    def test_grid(self):
        g = grid_graph(3, 3)
        corners = [0, 2, 6, 8]
        assert all(g.out_degree(c) == 2 for c in corners)
        assert g.out_degree(4) == 4  # centre

    def test_generator_validation(self):
        with pytest.raises(GraphError):
            path_graph(0)
        with pytest.raises(GraphError):
            cycle_graph(2)
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestRandomGenerators:
    def test_uniform_random_deterministic(self):
        a = uniform_random(128, avg_degree=4, seed=3)
        b = uniform_random(128, avg_degree=4, seed=3)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_uniform_random_symmetric(self):
        assert uniform_random(64, avg_degree=4, seed=1).is_symmetric()

    def test_kronecker_size_and_symmetry(self):
        g = kronecker(8, edge_factor=8, seed=2)
        assert g.num_vertices == 256
        assert g.is_symmetric()

    def test_kronecker_skewed_degrees(self):
        """RMAT degree distribution must be much more skewed than urand."""
        kron = kronecker(10, edge_factor=8, seed=2)
        urand = uniform_random(1024, avg_degree=8, seed=2)
        assert kron.out_degrees().max() > 2 * urand.out_degrees().max()

    def test_kronecker_validation(self):
        with pytest.raises(GraphError):
            kronecker(0)
        with pytest.raises(GraphError):
            kronecker(5, a=0.9, b=0.9, c=0.9)


class TestLoaders:
    def test_edge_list_roundtrip(self, tmp_path):
        g = cycle_graph(5)
        path = save_edge_list(g, tmp_path / "g.el")
        loaded = load_edge_list(path)
        assert np.array_equal(loaded.offsets, g.offsets)
        assert np.array_equal(loaded.neighbors, g.neighbors)

    def test_edge_list_with_comments(self, tmp_path):
        path = tmp_path / "c.el"
        path.write_text("# comment\n% other\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_edge_list_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected"):
            load_edge_list(path)

    def test_edge_list_non_integer_raises(self, tmp_path):
        path = tmp_path / "bad2.el"
        path.write_text("a b\n")
        with pytest.raises(GraphError, match="non-integer"):
            load_edge_list(path)

    def test_csr_roundtrip(self, tmp_path):
        g = kronecker(6, edge_factor=4, seed=5)
        path = save_csr(g, tmp_path / "g")
        loaded = load_csr(path)
        assert np.array_equal(loaded.offsets, g.offsets)
        assert np.array_equal(loaded.neighbors, g.neighbors)

    def test_csr_bad_archive(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, a=np.zeros(2))
        with pytest.raises(GraphError, match="not a repro CSR"):
            load_csr(path)
