"""Tests for the runtime invariant sanitizer (repro.lint.sanitize).

Two directions: broken policies must trip :class:`SanitizerError` with a
message naming the violated invariant, and correct runs — up to full
``run_matrix`` sweeps over synthetic GAP traces — must complete with zero
violations while actually executing checks.
"""

import pytest

from repro.core.config import small_test_machine
from repro.core.simulator import build_hierarchy, simulate
from repro.gap.suite import GapWorkloadSpec, build_graph, run_kernel
from repro.harness.runner import run_matrix
from repro.lint.sanitize import (
    AttachedSanitizers,
    HierarchySanitizer,
    InvariantSanitizer,
    SanitizerError,
    attach_sanitizers,
)
from repro.mem.cache import Cache
from repro.policies.base import BYPASS, PolicyAccess, ReplacementPolicy
from repro.policies.basic import LRUPolicy
from repro.trace.record import AccessKind
from repro.trace import synthetic

LOAD = AccessKind.LOAD
STORE = AccessKind.STORE


def sanitized_cache(policy=None, ways=4) -> Cache:
    cache = Cache("T", ways * 64, ways, policy or LRUPolicy())
    cache.attach_sanitizer(InvariantSanitizer())
    return cache


def fill_set(cache: Cache, count: int) -> None:
    for block in range(count):
        cache.fill(block, 0x400, LOAD)


class OutOfRangeVictim(LRUPolicy):
    name = "out-of-range"

    def find_victim(self, set_index, access, tags):
        return self.num_ways  # one past the end


class NoneVictim(LRUPolicy):
    name = "none-victim"

    def find_victim(self, set_index, access, tags):
        return None


class UndeclaredBypass(LRUPolicy):
    name = "undeclared-bypass"

    def find_victim(self, set_index, access, tags):
        return BYPASS  # without supports_bypass = True


class TestVictimChecks:
    def test_out_of_range_way_raises(self):
        cache = sanitized_cache(OutOfRangeVictim())
        with pytest.raises(SanitizerError, match="expected 0 <= way"):
            fill_set(cache, cache.num_ways + 1)

    def test_none_victim_raises(self):
        cache = sanitized_cache(NoneVictim())
        with pytest.raises(SanitizerError, match="find_victim returned way None"):
            fill_set(cache, cache.num_ways + 1)

    def test_undeclared_bypass_raises(self):
        cache = sanitized_cache(UndeclaredBypass())
        with pytest.raises(SanitizerError, match="supports_bypass"):
            fill_set(cache, cache.num_ways + 1)

    def test_declared_bypass_is_legal(self):
        class DeclaredBypass(UndeclaredBypass):
            name = "declared-bypass"
            supports_bypass = True

        cache = sanitized_cache(DeclaredBypass())
        fill_set(cache, cache.num_ways + 1)
        assert cache.stats.bypasses == 1


class TestEvictionPairing:
    def test_legal_evictions_are_counted(self):
        cache = sanitized_cache(LRUPolicy())
        fill_set(cache, cache.num_ways + 3)
        assert cache._sanitizer.evictions_verified == 3

    def test_swallowed_notification_raises(self):
        class Swallower(LRUPolicy):
            name = "swallower"

            def on_eviction(self, set_index, way, victim_block):
                pass  # defined, but the sanitizer wrapper replaces it...

        cache = sanitized_cache(Swallower())
        # ...so simulate the bug at the cache layer: drop the call.
        cache.policy.on_eviction = lambda *args: None
        with pytest.raises(SanitizerError, match="on_eviction never fired"):
            fill_set(cache, cache.num_ways + 1)

    def test_spurious_notification_raises(self):
        cache = sanitized_cache(LRUPolicy())
        fill_set(cache, cache.num_ways)
        with pytest.raises(SanitizerError, match="no eviction in progress"):
            cache.policy.on_eviction(0, 0, 0)

    def test_mismatched_notification_raises(self):
        sanitizer = InvariantSanitizer()
        cache = Cache("T", 4 * 64, 4, LRUPolicy())
        cache.attach_sanitizer(sanitizer)
        sanitizer.expect_eviction(0, 1, 0x10)
        with pytest.raises(SanitizerError, match="but the cache evicted"):
            cache.policy.on_eviction(0, 2, 0x10)

    def test_double_bind_rejected(self):
        cache = sanitized_cache(LRUPolicy())
        with pytest.raises(SanitizerError, match="already bound"):
            cache._sanitizer.bind(cache)


class TestSetChecks:
    def test_duplicate_tags_raise(self):
        cache = sanitized_cache(LRUPolicy())
        cache.fill(0, 0x400, LOAD)
        cache._tags[0][1] = 0  # corrupt: block 0 now in two ways
        with pytest.raises(SanitizerError, match="duplicate tag"):
            cache.access(0, 0x400, LOAD)

    def test_dirty_invalid_way_raises(self):
        cache = sanitized_cache(LRUPolicy())
        cache.fill(0, 0x400, STORE)
        cache._tags[0][0] = -1  # corrupt: dirty data with no tag
        with pytest.raises(SanitizerError, match="dirty but invalid"):
            cache._sanitizer.check_set(0, cache._tags[0], cache._dirty[0])

    def test_geometry_violation_raises(self):
        cache = sanitized_cache(LRUPolicy())
        cache.fill(0, 0x400, LOAD)
        cache._tags[0].append(99)  # set wider than its geometry
        with pytest.raises(SanitizerError, match="geometry says"):
            cache.access(0, 0x400, LOAD)  # hit path re-checks the set


class TestHierarchySanitizer:
    def test_inclusion_violation_detected(self):
        hierarchy = build_hierarchy(
            small_test_machine(), "lru", inclusive=True
        )
        sanitizers = attach_sanitizers(hierarchy)
        hierarchy.l1d.fill(0x123, 0x400, LOAD)  # resident above, not in LLC
        with pytest.raises(SanitizerError, match="resident in L1D but not in"):
            sanitizers.hierarchy.check_inclusion(hierarchy)

    def test_inclusive_run_sweeps_cleanly(self):
        hierarchy = build_hierarchy(
            small_test_machine(), "lru", inclusive=True
        )
        trace = synthetic.zipf_reuse(4000, num_blocks=400, seed=11)
        result = simulate(trace, hierarchy=hierarchy, sanitize=True)
        sweeps = hierarchy._sanitizer.sweeps
        assert sweeps == len(trace) // HierarchySanitizer.SWEEP_INTERVAL
        assert result.info["sanitizer_checks"] > 0

    def test_nine_mode_skips_sweeps(self):
        hierarchy = build_hierarchy(small_test_machine(), "lru")
        trace = synthetic.strided(3000, stride=64, elements=200)
        simulate(trace, hierarchy=hierarchy, sanitize=True)
        assert hierarchy._sanitizer.sweeps == 0


class TestCleanRuns:
    def test_simulate_reports_check_counters(self):
        trace = synthetic.zipf_reuse(3000, num_blocks=300, seed=5)
        result = simulate(
            trace, config=small_test_machine(), llc_policy="ship",
            sanitize=True,
        )
        assert result.info["sanitizer_checks"] > 1000
        assert result.info["sanitizer_evictions_verified"] > 0

    def test_unsanitized_simulate_has_no_counters(self):
        trace = synthetic.strided(2000, stride=64, elements=100)
        result = simulate(trace, config=small_test_machine(), llc_policy="lru")
        assert "sanitizer_checks" not in result.info

    def test_broken_policy_caught_through_simulate(self):
        # More blocks than the 32 KB test LLC holds, so the LLC must evict.
        trace = synthetic.strided(3000, stride=64, elements=1500)
        with pytest.raises(SanitizerError):
            simulate(
                trace, config=small_test_machine(),
                llc_policy=OutOfRangeVictim(), sanitize=True,
            )

    def test_attached_sanitizers_aggregate_all_levels(self):
        hierarchy = build_hierarchy(small_test_machine(), "srrip")
        sanitizers = attach_sanitizers(hierarchy)
        assert isinstance(sanitizers, AttachedSanitizers)
        assert set(sanitizers.caches) == {"L1I", "L1D", "L2C", "LLC"}
        trace = synthetic.pointer_chase(2000, num_nodes=300, seed=9)
        simulate(trace, hierarchy=hierarchy, sanitize=False)
        assert sanitizers.total_checks > 0


class TestAcceptanceGapMatrix:
    """ISSUE acceptance: a sanitized run_matrix over synthetic GAP traces
    completes with zero invariant violations for every paper policy."""

    def test_gap_sweep_with_sanitize_is_violation_free(self):
        traces = {}
        for kernel in ("bfs", "pr"):
            spec = GapWorkloadSpec(
                kernel=kernel, graph_name="kron", scale=10, degree=8
            )
            graph = build_graph(spec)
            traces[spec.name] = run_kernel(
                kernel, graph, trace_name=spec.name, max_accesses=4000
            ).trace
        policies = ["lru", "srrip", "ship", "hawkeye", "mpppb"]
        matrix = run_matrix(
            traces, policies, config=small_test_machine(), sanitize=True
        )  # any violation raises SanitizerError
        for workload in matrix.workloads:
            for policy in policies:
                assert matrix.get(workload, policy).info["sanitizer_checks"] > 0
