"""Behavioural tests for the classic policies (LRU/MRU/FIFO/NRU/PLRU/Random)."""

import pytest

from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.basic import (
    FIFOPolicy,
    LRUPolicy,
    MRUPolicy,
    NRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
)
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD


def one_set_cache(policy, ways=4) -> Cache:
    """A single-set cache so victim choice is fully observable."""
    return Cache("T", ways * 64, ways, policy)


def touch(cache: Cache, block: int) -> bool:
    result = cache.access(block, 0, LOAD)
    if not result.hit:
        cache.fill(block, 0, LOAD)
    return result.hit


class TestLRU:
    def test_evicts_least_recently_used(self):
        c = one_set_cache(LRUPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)
        touch(c, 0)  # 1 is now LRU
        touch(c, 2)
        assert c.contains(0)
        assert not c.contains(1)

    def test_hit_refreshes_recency(self):
        c = one_set_cache(LRUPolicy(), ways=3)
        for b in (0, 1, 2):
            touch(c, b)
        touch(c, 0)  # refresh 0; LRU is now 1
        touch(c, 3)
        assert not c.contains(1)
        assert c.contains(0)

    def test_stack_property_small(self):
        """LRU hit count never decreases when capacity grows (inclusion)."""
        pattern = [0, 1, 2, 0, 3, 1, 2, 4, 0, 1, 2, 3, 4, 0]
        hits_by_ways = []
        for ways in (1, 2, 3, 4, 5):
            c = one_set_cache(LRUPolicy(), ways=ways)
            hits = sum(touch(c, b) for b in pattern)
            hits_by_ways.append(hits)
        assert hits_by_ways == sorted(hits_by_ways)


class TestMRU:
    def test_evicts_most_recent(self):
        c = one_set_cache(MRUPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)  # MRU = 1
        touch(c, 2)
        assert c.contains(0)
        assert not c.contains(1)

    def test_beats_lru_on_cyclic_thrash(self):
        """On a cycle of ways+1 blocks, MRU keeps most of the set; LRU gets 0 hits."""
        pattern = [0, 1, 2, 3, 4] * 20
        lru = one_set_cache(LRUPolicy(), ways=4)
        mru = one_set_cache(MRUPolicy(), ways=4)
        lru_hits = sum(touch(lru, b) for b in pattern)
        mru_hits = sum(touch(mru, b) for b in pattern)
        assert lru_hits == 0
        assert mru_hits > lru_hits


class TestFIFO:
    def test_hits_do_not_refresh(self):
        c = one_set_cache(FIFOPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)
        touch(c, 0)  # hit; FIFO order still 0 first
        touch(c, 2)
        assert not c.contains(0)
        assert c.contains(1)


class TestNRU:
    def test_victim_is_first_unreferenced(self):
        c = one_set_cache(NRUPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)
        # Both referenced: fill of 2 clears all bits then evicts way 0.
        touch(c, 2)
        assert not c.contains(0)

    def test_second_chance(self):
        c = one_set_cache(NRUPolicy(), ways=2)
        touch(c, 0)
        touch(c, 1)
        touch(c, 2)  # evicts 0, set bits cleared; 2's bit set
        touch(c, 3)  # way with clear bit is 1's slot
        assert c.contains(2)
        assert not c.contains(1)


class TestTreePLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError, match="power-of-two"):
            Cache("T", 3 * 64, 3, TreePLRUPolicy())

    def test_victim_follows_tree_bits(self):
        c = one_set_cache(TreePLRUPolicy(), ways=4)
        for b in (0, 1, 2, 3):
            touch(c, b)
        # After touching 0..3 in order, the PLRU victim must not be the
        # most recently touched block (3).
        touch(c, 4)
        assert c.contains(3)

    def test_approximates_lru_hit_rate(self):
        """On a zipf-ish pattern PLRU should hit within 25% of true LRU."""
        import numpy as np

        rng = np.random.default_rng(1)
        pattern = rng.zipf(1.5, size=2000) % 12
        lru = one_set_cache(LRUPolicy(), ways=8)
        plru = one_set_cache(TreePLRUPolicy(), ways=8)
        lru_hits = sum(touch(lru, int(b)) for b in pattern)
        plru_hits = sum(touch(plru, int(b)) for b in pattern)
        assert plru_hits >= 0.75 * lru_hits


class TestRandom:
    def test_deterministic_given_seed(self):
        a = one_set_cache(RandomPolicy(seed=1), ways=4)
        b = one_set_cache(RandomPolicy(seed=1), ways=4)
        pattern = list(range(8)) * 5
        hits_a = sum(touch(a, blk) for blk in pattern)
        hits_b = sum(touch(b, blk) for blk in pattern)
        assert hits_a == hits_b

    def test_victims_in_range(self):
        policy = RandomPolicy(seed=2)
        policy.initialize(4, 4)
        access = PolicyAccess(0, 0, LOAD)
        for _ in range(100):
            assert 0 <= policy.find_victim(0, access, [0, 1, 2, 3]) < 4
