"""Per-rule fixture tests for the repro.lint static analyzer.

Each rule gets a known-bad snippet it must flag and a known-good snippet
it must pass. Fixtures are written under ``tmp_path/policies`` so the
path-scoped rules (determinism) treat them as simulation code.
"""

import textwrap

import pytest

from repro.lint import Severity, available_rules, lint_paths, make_rule
from repro.lint.rules import UnknownRuleError

EXPECTED_RULES = [
    "determinism",
    "hot-alloc",
    "pc-table-hygiene",
    "pc-writeback-guard",
    "policy-hooks",
    "saturating-counters",
    "victim-return",
]


def lint_source(tmp_path, source, rule=None, subdir="policies"):
    """Write a fixture module and lint it (with one rule, or all)."""
    target = tmp_path / subdir
    target.mkdir(parents=True, exist_ok=True)
    path = target / "fixture.py"
    path.write_text(textwrap.dedent(source))
    rules = [make_rule(rule)] if rule else None
    return lint_paths([path], rules)


class TestRuleRegistry:
    def test_all_builtin_rules_registered(self):
        assert set(EXPECTED_RULES) <= set(available_rules())

    def test_make_rule_returns_fresh_instances(self):
        assert make_rule("policy-hooks") is not make_rule("policy-hooks")

    def test_unknown_rule_raises_with_available_names(self):
        with pytest.raises(UnknownRuleError, match="policy-hooks"):
            make_rule("definitely-not-a-rule")

    def test_rules_declare_description_and_severity(self):
        for name in EXPECTED_RULES:
            rule = make_rule(name)
            assert rule.name == name
            assert rule.description
            assert isinstance(rule.severity, Severity)


class TestPolicyHooks:
    def test_missing_hooks_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Incomplete(ReplacementPolicy):
                name = "incomplete"

                def find_victim(self, set_index, access, tags):
                    return 0
        """, rule="policy-hooks")
        messages = [f.message for f in findings]
        assert any("on_hit" in m for m in messages)
        assert any("on_fill" in m for m in messages)
        assert all(f.severity == Severity.ERROR for f in findings)
        assert all(f.path.endswith("fixture.py") and f.line > 0 for f in findings)

    def test_missing_registry_name_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Anonymous(ReplacementPolicy):
                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    pass

                def on_fill(self, set_index, way, access):
                    pass
        """, rule="policy-hooks")
        assert len(findings) == 1
        assert "name" in findings[0].message

    def test_complete_policy_passes(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Complete(ReplacementPolicy):
                name = "complete"

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    pass

                def on_fill(self, set_index, way, access):
                    pass
        """, rule="policy-hooks")
        assert findings == []

    def test_hooks_inherited_from_intermediate_base_count(self, tmp_path):
        findings = lint_source(tmp_path, """
            class BaseImpl(ReplacementPolicy):
                name = "baseimpl"

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    pass

                def on_fill(self, set_index, way, access):
                    pass

            class Derived(BaseImpl):
                name = "derived"
        """, rule="policy-hooks")
        assert findings == []

    def test_abstract_intermediates_are_skipped(self, tmp_path):
        findings = lint_source(tmp_path, """
            import abc

            class Skeleton(ReplacementPolicy):
                name = "skeleton"

                @abc.abstractmethod
                def find_victim(self, set_index, access, tags):
                    ...
        """, rule="policy-hooks")
        assert findings == []


class TestVictimReturn:
    def test_return_none_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class NoneVictim(ReplacementPolicy):
                name = "nonevictim"

                def find_victim(self, set_index, access, tags):
                    for way in range(self.num_ways):
                        if tags[way] == 0:
                            return way
                    return None
        """, rule="victim-return")
        assert len(findings) == 1
        assert "returns None" in findings[0].message

    def test_negative_literal_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class RawNegative(ReplacementPolicy):
                name = "rawnegative"

                def find_victim(self, set_index, access, tags):
                    return -1
        """, rule="victim-return")
        assert len(findings) == 1
        assert "BYPASS" in findings[0].hint

    def test_undeclared_bypass_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class SneakyBypass(ReplacementPolicy):
                name = "sneakybypass"

                def find_victim(self, set_index, access, tags):
                    return BYPASS
        """, rule="victim-return")
        assert len(findings) == 1
        assert "supports_bypass" in findings[0].message

    def test_declared_bypass_passes(self, tmp_path):
        findings = lint_source(tmp_path, """
            class DeclaredBypass(ReplacementPolicy):
                name = "declaredbypass"
                supports_bypass = True

                def find_victim(self, set_index, access, tags):
                    if access.is_writeback:
                        return BYPASS
                    return 0
        """, rule="victim-return")
        assert findings == []

    def test_nested_function_returns_are_ignored(self, tmp_path):
        findings = lint_source(tmp_path, """
            class NestedHelper(ReplacementPolicy):
                name = "nestedhelper"

                def find_victim(self, set_index, access, tags):
                    def helper():
                        return None
                    helper()
                    return 0
        """, rule="victim-return")
        assert findings == []


class TestPCWritebackGuard:
    def test_unguarded_pc_read_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Unguarded(ReplacementPolicy):
                name = "unguarded"

                def on_fill(self, set_index, way, access):
                    self._sig[set_index][way] = access.pc & 255
        """, rule="pc-writeback-guard")
        assert len(findings) == 1
        assert "access.pc" in findings[0].message
        assert "is_writeback" in findings[0].hint

    def test_guarded_pc_read_passes(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Guarded(ReplacementPolicy):
                name = "guarded"

                def on_fill(self, set_index, way, access):
                    if access.is_writeback:
                        return
                    self._sig[set_index][way] = access.pc & 255
        """, rule="pc-writeback-guard")
        assert findings == []

    def test_pc_read_in_helper_is_found_transitively(self, tmp_path):
        findings = lint_source(tmp_path, """
            class HelperRead(ReplacementPolicy):
                name = "helperread"

                def _signature(self, access):
                    return access.pc & 255

                def on_fill(self, set_index, way, access):
                    self._sig[set_index][way] = self._signature(access)
        """, rule="pc-writeback-guard")
        assert len(findings) == 1

    def test_guard_at_call_site_covers_helper(self, tmp_path):
        findings = lint_source(tmp_path, """
            class GuardedCaller(ReplacementPolicy):
                name = "guardedcaller"

                def _signature(self, access):
                    return access.pc & 255

                def on_fill(self, set_index, way, access):
                    if access.is_writeback:
                        return
                    self._sig[set_index][way] = self._signature(access)
        """, rule="pc-writeback-guard")
        assert findings == []


class TestPCTableHygiene:
    BAD = """
        class LeakyPredictor(ReplacementPolicy):
            name = "leakypredictor"

            def on_hit(self, set_index, way, access):
                self._table[self._line_sig[set_index][way]] = 1

            def on_fill(self, set_index, way, access):
                if access.is_writeback:
                    return
                sig = access.pc & 255
                self._table[sig] = 0
                self._line_sig[set_index][way] = sig
    """

    def test_unguarded_touch_hook_flagged(self, tmp_path):
        findings = lint_source(tmp_path, self.BAD, rule="pc-table-hygiene")
        assert len(findings) == 1
        assert "on_hit" in findings[0].message
        assert "_table" in findings[0].message

    def test_guarded_touch_hook_passes(self, tmp_path):
        good = self.BAD.replace(
            "def on_hit(self, set_index, way, access):",
            "def on_hit(self, set_index, way, access):\n"
            "                if access.is_writeback:\n"
            "                    return",
        )
        assert lint_source(tmp_path, good, rule="pc-table-hygiene") == []

    def test_policies_without_pc_tables_are_exempt(self, tmp_path):
        findings = lint_source(tmp_path, """
            class PCBlind(ReplacementPolicy):
                name = "pcblind"

                def on_hit(self, set_index, way, access):
                    self._age[set_index][way] = 0

                def on_fill(self, set_index, way, access):
                    self._age[set_index][way] = 0
        """, rule="pc-table-hygiene")
        assert findings == []


class TestSaturatingCounters:
    def test_unguarded_increment_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Overflowing(ReplacementPolicy):
                name = "overflowing"

                def on_hit(self, set_index, way, access):
                    self._counter[set_index][way] += 1
        """, rule="saturating-counters")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING

    def test_bounded_increment_passes(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Bounded(ReplacementPolicy):
                name = "bounded"

                def on_hit(self, set_index, way, access):
                    if self._counter[set_index][way] < 3:
                        self._counter[set_index][way] += 1
        """, rule="saturating-counters")
        assert findings == []

    def test_row_alias_is_seen_through(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Aliased(ReplacementPolicy):
                name = "aliased"

                def on_hit(self, set_index, way, access):
                    row = self._counter[set_index]
                    row[way] += 1
        """, rule="saturating-counters")
        assert len(findings) == 1

    def test_guard_in_enclosing_while_passes(self, tmp_path):
        # SRRIP-style aging: the loop's exit comparison is the bound.
        findings = lint_source(tmp_path, """
            class Aging(ReplacementPolicy):
                name = "aging"

                def find_victim(self, set_index, access, tags):
                    rrpv = self._rrpv[set_index]
                    while True:
                        for way in range(self.num_ways):
                            if rrpv[way] == 3:
                                return way
                        for way in range(self.num_ways):
                            rrpv[way] += 1
        """, rule="saturating-counters")
        assert findings == []


class TestDeterminism:
    BAD = """
        import random
        from time import monotonic

        class Jittery(ReplacementPolicy):
            name = "jittery"

            def on_fill(self, set_index, way, access):
                if access.is_writeback:
                    return
                self._sig[set_index][way] = hash(access.pc)
                self._rng = default_rng()
    """

    def test_nondeterminism_in_simulation_code_flagged(self, tmp_path):
        findings = lint_source(tmp_path, self.BAD, rule="determinism")
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 4
        assert "random" in messages
        assert "time" in messages
        assert "hash()" in messages
        assert "default_rng" in messages

    def test_non_simulation_modules_are_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path, self.BAD, rule="determinism", subdir="harness"
        )
        assert findings == []

    def test_seeded_rng_passes(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Seeded(ReplacementPolicy):
                name = "seeded"

                def initialize(self, num_sets, num_ways):
                    self._rng = default_rng(42)
        """, rule="determinism")
        assert findings == []


class TestHotAlloc:
    def test_allocation_in_hot_function_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Wasteful:
                def lookup(self, block):  # hot
                    return [w for w in range(8)]
        """, rule="hot-alloc")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "comprehension" in findings[0].message

    def test_marker_above_def_line_works(self, tmp_path):
        findings = lint_source(tmp_path, """
            # hot
            def fill(block):
                return {}
        """, rule="hot-alloc")
        assert len(findings) == 1

    def test_unmarked_functions_may_allocate(self, tmp_path):
        findings = lint_source(tmp_path, """
            def initialize(num_sets, num_ways):
                return [[0] * num_ways for _ in range(num_sets)]
        """, rule="hot-alloc")
        assert findings == []

    def test_allocation_free_hot_function_passes(self, tmp_path):
        findings = lint_source(tmp_path, """
            def lookup(tags, block):  # hot
                for way, tag in enumerate(tags):
                    if tag == block:
                        return way
                return -1
        """, rule="hot-alloc")
        assert findings == []


class TestParseErrors:
    def test_syntax_error_becomes_a_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"
        assert findings[0].severity == Severity.ERROR


class TestDefaultRun:
    def test_comprehensively_bad_fixture_trips_many_rules(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random

            class Disaster(ReplacementPolicy):
                def find_victim(self, set_index, access, tags):
                    self._table[access.pc & 255] += 1
                    return None
        """)
        rules_hit = {f.rule for f in findings}
        assert {
            "determinism",
            "policy-hooks",
            "pc-writeback-guard",
            "victim-return",
        } <= rules_hit

    def test_findings_are_sorted_and_unique(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Incomplete(ReplacementPolicy):
                name = "incomplete"
        """)
        keys = [(f.path, f.line, f.rule) for f in findings]
        assert keys == sorted(keys)
        assert len(findings) == len(set(findings))  # frozen dataclass dedup
