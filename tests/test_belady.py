"""Tests for Belady's OPT: next-use computation and oracle optimality."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mem.cache import Cache
from repro.policies.base import PolicyAccess
from repro.policies.basic import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.policies.belady import NEVER, BeladyPolicy, compute_next_use
from repro.policies.rrip import SRRIPPolicy
from repro.trace.record import AccessKind

LOAD = AccessKind.LOAD


class TestComputeNextUse:
    def test_simple_sequence(self):
        blocks = np.array([1, 2, 1, 3, 2], dtype=np.uint64)
        next_use = compute_next_use(blocks)
        assert next_use[0] == 2  # 1 reused at index 2
        assert next_use[1] == 4  # 2 reused at index 4
        assert next_use[2] == NEVER
        assert next_use[3] == NEVER
        assert next_use[4] == NEVER

    def test_empty(self):
        assert len(compute_next_use(np.empty(0, dtype=np.uint64))) == 0

    def test_all_same_block(self):
        next_use = compute_next_use(np.array([7, 7, 7], dtype=np.uint64))
        assert next_use.tolist() == [1, 2, NEVER]


def run_single_set(policy, blocks, ways=4) -> int:
    """Hits of a policy on a single-set cache over a block sequence."""
    cache = Cache("T", ways * 64, ways, policy)
    hits = 0
    for b in blocks:
        if cache.access(int(b), 0, LOAD).hit:
            hits += 1
        else:
            cache.fill(int(b), 0, LOAD)
    return hits


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_opt_dominates_online_policies(self, seed):
        """On any sequence, OPT must hit at least as often as LRU/FIFO/etc."""
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 12, size=400, dtype=np.uint64)
        opt_hits = run_single_set(BeladyPolicy(blocks), blocks)
        for competitor in (LRUPolicy(), FIFOPolicy(), RandomPolicy(), SRRIPPolicy()):
            assert opt_hits >= run_single_set(competitor, blocks)

    def test_opt_handles_cyclic_thrash_perfectly(self):
        """On a cycle of ways+1 blocks OPT keeps ways-1 blocks resident."""
        blocks = np.array(list(range(5)) * 40, dtype=np.uint64)
        opt_hits = run_single_set(BeladyPolicy(blocks), blocks, ways=4)
        lru_hits = run_single_set(LRUPolicy(), blocks, ways=4)
        assert lru_hits == 0
        # OPT keeps 3 of 5 cycle members pinned after warmup.
        assert opt_hits >= 3 * 39 - 5

    def test_no_bypass_variant_still_beats_lru(self):
        blocks = np.array(list(range(6)) * 30, dtype=np.uint64)
        with_bypass = run_single_set(BeladyPolicy(blocks), blocks)
        without = run_single_set(BeladyPolicy(blocks, allow_bypass=False), blocks)
        lru = run_single_set(LRUPolicy(), blocks)
        assert without > lru
        assert with_bypass >= without


class TestStreamVerification:
    def test_mismatch_raises(self):
        blocks = np.array([1, 2, 3], dtype=np.uint64)
        policy = BeladyPolicy(blocks)
        policy.initialize(1, 2)
        policy.on_fill(0, 0, PolicyAccess(1, 0, LOAD))
        with pytest.raises(SimulationError, match="mismatch"):
            policy.on_fill(0, 1, PolicyAccess(99, 0, LOAD))

    def test_exhaustion_raises(self):
        blocks = np.array([1], dtype=np.uint64)
        policy = BeladyPolicy(blocks)
        policy.initialize(1, 2)
        policy.on_fill(0, 0, PolicyAccess(1, 0, LOAD))
        with pytest.raises(SimulationError, match="exhausted"):
            policy.on_hit(0, 0, PolicyAccess(1, 0, LOAD))

    def test_position_tracks_consumption(self):
        blocks = np.array([1, 1], dtype=np.uint64)
        policy = BeladyPolicy(blocks)
        policy.initialize(1, 2)
        policy.on_fill(0, 0, PolicyAccess(1, 0, LOAD))
        policy.on_hit(0, 0, PolicyAccess(1, 0, LOAD))
        assert policy.position == 2
