"""Tests for the DDR4 bank/row timing model."""

import pytest

from repro.mem.dram import DRAM, DRAMConfig


def cfg(**kwargs) -> DRAMConfig:
    return DRAMConfig(**kwargs)


class TestLatencies:
    def test_latency_ordering(self):
        c = cfg()
        assert c.row_hit_latency < c.row_closed_latency < c.row_conflict_latency

    def test_first_access_is_row_closed(self):
        d = DRAM(cfg())
        latency = d.read(0, cycle=0)
        assert latency == d.config.row_closed_latency
        assert d.stats.row_closed == 1

    def test_same_row_hits(self):
        d = DRAM(cfg())
        d.read(0, cycle=0)
        latency = d.read(64, cycle=10_000)  # same 8 KiB row
        assert latency == d.config.row_hit_latency
        assert d.stats.row_hits == 1

    def test_different_row_same_bank_conflicts(self):
        d = DRAM(cfg())
        banks = d.config.banks_per_channel * d.config.channels
        row_bytes = d.config.row_bytes
        d.read(0, cycle=0)
        # Row `banks` maps to bank 0 again but is a different row.
        latency = d.read(banks * row_bytes, cycle=10_000)
        assert latency == d.config.row_conflict_latency
        assert d.stats.row_conflicts == 1


class TestBankQueueing:
    def test_back_to_back_requests_queue(self):
        d = DRAM(cfg())
        first = d.read(0, cycle=0)
        # Second request to the same bank issued while the first is busy.
        second = d.read(64, cycle=0)
        assert second == first + d.config.row_hit_latency

    def test_disjoint_banks_do_not_queue(self):
        d = DRAM(cfg())
        d.read(0, cycle=0)
        latency = d.read(d.config.row_bytes, cycle=0)  # next bank
        assert latency == d.config.row_closed_latency

    def test_late_request_sees_free_bank(self):
        d = DRAM(cfg())
        d.read(0, cycle=0)
        latency = d.read(64, cycle=1_000_000)
        assert latency == d.config.row_hit_latency


class TestStats:
    def test_reads_and_writes_counted(self):
        d = DRAM(cfg())
        d.read(0, 0)
        d.write(64, 0)
        assert d.stats.reads == 1
        assert d.stats.writes == 1
        assert d.stats.accesses == 2

    def test_row_hit_rate(self):
        d = DRAM(cfg())
        d.read(0, 0)
        d.read(64, 100_000)
        assert d.stats.row_hit_rate == pytest.approx(0.5)

    def test_mean_read_latency(self):
        d = DRAM(cfg())
        d.read(0, 0)
        assert d.stats.mean_read_latency == d.config.row_closed_latency

    def test_writes_do_not_affect_read_latency_stat(self):
        d = DRAM(cfg())
        d.read(0, 0)
        before = d.stats.mean_read_latency
        d.write(1 << 20, 0)
        assert d.stats.mean_read_latency == before


class TestStreamBehaviour:
    def test_sequential_stream_mostly_row_hits(self):
        d = DRAM(cfg())
        for i in range(128):
            d.read(i * 64, cycle=i * 10_000)
        assert d.stats.row_hit_rate > 0.9

    def test_random_stream_mostly_misses(self):
        import numpy as np

        rng = np.random.default_rng(0)
        d = DRAM(cfg())
        for i in range(256):
            d.read(int(rng.integers(0, 1 << 30)) & ~63, cycle=i * 10_000)
        assert d.stats.row_hit_rate < 0.2


class TestRebase:
    def test_residual_busy_time_preserved(self):
        d = DRAM(cfg())
        d.read(0, cycle=10_000)  # bank 0 busy until 10_000 + service
        busy_until = d._banks[0].next_free
        d.rebase(10_000)
        assert d._banks[0].next_free == busy_until - 10_000

    def test_idle_banks_clamp_to_zero(self):
        d = DRAM(cfg())
        d.read(0, cycle=0)  # long since completed by cycle 1_000_000
        d.rebase(1_000_000)
        assert all(bank.next_free == 0 for bank in d._banks)

    def test_open_row_state_survives(self):
        d = DRAM(cfg())
        d.read(0, cycle=0)
        d.rebase(500_000)
        # Same row on the new clock: still a row hit, not a re-activate.
        assert d.read(64, cycle=0) >= d.config.row_hit_latency
        assert d.stats.row_hits == 1

    def test_rebase_then_read_pays_no_stale_queue_wait(self):
        d = DRAM(cfg())
        for i in range(64):  # hammer bank 0 to build a long queue
            d.read(i * d.config.row_bytes * d.config.banks_per_channel, cycle=0)
        d.rebase(d._banks[0].next_free)  # boundary after the queue drains
        latency = d.read(0, cycle=0)
        assert latency <= d.config.row_conflict_latency

    def test_negative_cycle_rejected(self):
        d = DRAM(cfg())
        with pytest.raises(ValueError):
            d.rebase(-1)
