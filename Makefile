# Convenience targets for the repro toolkit.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-batched bench-sampling sampling-gate chaos examples experiments lint typecheck check clean

install:
	pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# The CI smoke subset: reduced traces through the sweep engine, then the
# regression gate against benchmarks/expected/. Mirrors the `benchmarks`
# CI job (see .github/workflows/ci.yml and docs/sweeps.md).
bench-smoke:
	REPRO_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/bench_fig2_mpki.py benchmarks/bench_fig3_speedup.py \
		--benchmark-only -q
	REPRO_SMOKE=1 $(PYTHON) benchmarks/check_regression.py

# The batched-engine smoke mirror of bench-smoke: prove the batched
# multi-cell engine bit-identical to the reference, append a throughput
# entry to BENCH_sweep.json, and gate it against the last entry
# (see docs/performance.md and .github/workflows/ci.yml).
bench-batched:
	PYTHONPATH=src $(PYTHON) -m repro verify-fastpath --engine batched \
		--accesses 6000
	REPRO_SMOKE=1 PYTHONPATH=src $(PYTHON) benchmarks/record_trajectory.py
	REPRO_SMOKE=1 $(PYTHON) benchmarks/check_regression.py --trajectory

# The sampling mirror of bench-batched: measure sampled-vs-full error
# on the smoke suites, append an entry to BENCH_sampling.json, and gate
# it against the committed error budget (see docs/sampling.md and the
# `sampling-gate` CI job). Recording is guarded: use
# `record_sampling.py --force` directly when re-baselining from a
# dirty tree.
bench-sampling:
	REPRO_SMOKE=1 PYTHONPATH=src $(PYTHON) benchmarks/record_sampling.py
	REPRO_SMOKE=1 $(PYTHON) benchmarks/check_regression.py --sampling

# Deterministic fault injection, both generations: classic worker-level
# faults (crash/hang/corruption/truncation), then the chaos v2 failure
# domains — whole-process SIGKILL + journal resume, disk-full cache
# degradation, and a memory-bomb cell against the RSS watchdog. Every
# scenario must recover bit-identically (see docs/resilience.md).
chaos:
	PYTHONPATH=src $(PYTHON) -m repro chaos --seed 7 --jobs 2 --cell-timeout 10
	PYTHONPATH=src $(PYTHON) -m repro chaos --scenario v2 --seed 7

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/policy_shootout.py
	$(PYTHON) examples/opt_headroom.py
	$(PYTHON) examples/graph_cache_study.py
	$(PYTHON) examples/complexity_vs_benefit.py

experiments:
	$(PYTHON) -m repro experiment table1
	$(PYTHON) -m repro experiment e11

# Whole-program static analyzer (always available, baseline-gated, same
# strictness as the CI `lint` job) + ruff (if installed).
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --strict
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping style checks (CI runs them)"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping type checks (CI runs them)"; \
	fi

# Gate-only half of bench-sampling: validate the committed
# BENCH_sampling.json against the error budget without re-measuring
# (seconds, no simulation — safe for every `make check`).
sampling-gate:
	$(PYTHON) benchmarks/check_regression.py --sampling

# Everything CI gates on short of the test matrix: repro lint --strict,
# ruff and mypy (the latter two when installed), plus the sampling
# error-budget gate over the checked-in trajectory.
check: lint typecheck sampling-gate

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
